// Package netlist parses the simulator's SPICE-like input format — the
// paper's Example Input File 1 dialect:
//
//	#SET component definitions
//	junc 1 1 4 1e-6 1e-18        junction <id> <n1> <n2> <conductance S> <C F>
//	cap 3 4 3e-18                capacitor <n1> <n2> <C F>
//	charge 4 0.65                background charge on island <n>, units of e
//
//	#Input source information
//	vdc 1 0.02                   DC source on node <n>, volts
//	vac 3 0.0 0.01 1e9 [phase]   sine source: offset amp freq [phase]
//	vpwl 3 0 0 1e-9 0.1 ...      piecewise-linear source: t v pairs
//	symm 1                       node 1 mirrors the swept source, negated
//
//	#Overall node information
//	num j 2                      declared junction count (validated)
//	num ext 3                    declared external count (validated)
//	num nodes 4                  declared node count incl. externals (validated)
//
//	#Simulation specific information
//	temp 5                       kelvin
//	cotunnel                     enable second-order cotunneling
//	super 0.2e-3 1.2             superconducting: Delta(0) in eV, Tc in K
//	record 1 2                   record currents of junctions 1 and 2
//	probe 4                      record the waveform of node 4
//	jumps 100000 1               stop after N tunnel events [runs]
//	time 1e-5                    or stop at simulated time (seconds)
//	sweep 2 0.02 0.00005         sweep node 2's DC source over [-max, max]
//	map x 2 -0.04 0.04 33        stability-map X axis: node min max points
//	map y 3 0 0.05 17            stability-map Y axis
//	refine 3 0.1                 adaptive map refinement: depth [threshold]
//	seed 42                      RNG seed
//	adaptive 0.05                adaptive solver with threshold alpha
//	refresh 1024                 full recalculation period
//	sparse                       sparse locality-aware potential engine
//	cinv-eps 1e-9                truncate C^-1 rows at eps*rowmax (implies sparse)
//	parallel 4                   within-run rate-engine workers (0 = auto)
//	rate-tables                  tabulated normal-state tunnel kernels
//
// Node 0 is always ground (an external at 0 V). Nodes with a source are
// external; every other referenced node is an island. Lines starting
// with '#' and blank lines are ignored.
//
// Because a parsed deck is re-instantiated for every sweep point (the
// built circuit is immutable), Parse returns a Deck that Compile turns
// into a fresh circuit, optionally overriding DC source values.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"semsim/internal/circuit"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// SweepSpec describes the requested 1-D source sweep.
type SweepSpec struct {
	Node      int // netlist node number whose DC source is swept
	Max, Step float64
	// Mirror is the node driven with the negated sweep value (the
	// paper's "symm" directive), or -1.
	Mirror int
}

// MapAxis is one axis of a 2-D stability map: the DC-driven netlist
// node it sweeps and its coarse grid.
type MapAxis struct {
	Node     int
	Min, Max float64
	Points   int
}

// Values expands the axis into its coarse grid coordinates.
func (a MapAxis) Values() []float64 { return numeric.Linspace(a.Min, a.Max, a.Points) }

// MapSpec describes a requested 2-D stability map (the `map` deck
// directive), optionally adaptively refined (`refine`): the coarse
// X×Y grid is simulated everywhere and cells whose corner currents
// span at least Threshold × the global current range are subdivided
// Depth times.
type MapSpec struct {
	X, Y      MapAxis
	Depth     int     // refinement levels; 0 = uniform coarse grid
	Threshold float64 // contrast trigger fraction; 0 = engine default
}

// Spec carries everything in the deck that is not circuit topology.
type Spec struct {
	Temp         float64
	Cotunnel     bool
	Super        *circuit.SuperParams
	Jumps        uint64
	Runs         int
	MaxTime      float64
	Seed         uint64
	Adaptive     bool
	Alpha        float64
	RefreshEvery int
	// Sparse selects the sparse locality-aware potential engine;
	// CinvEps is the relative C^-1 row-truncation threshold (0 = exact,
	// bit-identical to dense; > 0 implies Sparse).
	Sparse  bool
	CinvEps float64
	// Parallel is the within-run rate-engine worker count (0 = solver
	// default, 1 = serial; bit-identical either way) and RateTables
	// routes normal-state rates through the error-bounded interpolation
	// tables. Engine knobs rather than physics, but deck-expressible so
	// a submitted deck is self-contained (e.g. for the semsimd batch
	// daemon); command-line overrides still win.
	Parallel    int
	RateTables  bool
	Sweep       *SweepSpec
	Map         *MapSpec
	RecordJuncs []int // netlist junction ids
	ProbeNodes  []int // netlist node numbers
	// NoiseJuncs and FanoJuncs carry the `record noise` and
	// `record fano` directives: streaming spectral-density and
	// counting-statistics estimators per junction (see internal/noise).
	// Both forms imply plain recording, so their junctions also appear
	// in RecordJuncs.
	NoiseJuncs []NoiseSpec
	FanoJuncs  []FanoSpec
}

// NoiseSpec is one `record noise` directive: estimate the current
// spectral density S_I(ω) of a junction on an angular-frequency grid.
// An empty grid records counting statistics only (Fano factor with an
// auto-calibrated window).
type NoiseSpec struct {
	Junc   int
	Omegas []float64 // rad/s, each > 0
}

// FanoSpec is one `record fano` directive: windowed full counting
// statistics (mean, variance, Fano factor) of a junction. Window is
// the counting-window width τ in seconds; 0 auto-calibrates it from
// the warm-up event rate.
type FanoSpec struct {
	Junc   int
	Window float64
}

type juncDef struct {
	id, a, b int
	g, c     float64
	line     int
}

type capDef struct {
	a, b int
	c    float64
}

type srcDef struct {
	node int
	src  circuit.Source
}

// Deck is a parsed netlist, ready to be compiled into circuits.
type Deck struct {
	Spec Spec

	juncs   []juncDef
	caps    []capDef
	sources map[int]circuit.Source
	charges map[int]float64 // units of e

	declJ, declExt, declNodes int // -1 when not declared
}

// recordJunc adds j to the plain record list unless already present:
// noise and fano directives imply current recording, and the
// append-if-missing keeps Parse(Format(d)) a fixpoint (Format writes
// the full record line before the noise/fano lines).
func (d *Deck) recordJunc(j int) {
	for _, r := range d.Spec.RecordJuncs {
		if r == j {
			return
		}
	}
	d.Spec.RecordJuncs = append(d.Spec.RecordJuncs, j)
}

// Parse reads a deck. Errors carry the offending line number.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{
		sources: map[int]circuit.Source{},
		charges: map[int]float64{},
		declJ:   -1, declExt: -1, declNodes: -1,
	}
	d.Spec.Runs = 1
	d.Spec.Alpha = 0.05
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "*") {
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		f := strings.Fields(line)
		if err := d.directive(f, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Deck) directive(f []string, ln int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("netlist line %d: %s", ln, fmt.Sprintf(format, args...))
	}
	num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
	inum := func(s string) (int, error) { return strconv.Atoi(s) }
	need := func(n int) error {
		if len(f)-1 != n {
			return bad("%s needs %d arguments, got %d", f[0], n, len(f)-1)
		}
		return nil
	}

	switch f[0] {
	case "junc":
		if err := need(5); err != nil {
			return err
		}
		id, err1 := inum(f[1])
		a, err2 := inum(f[2])
		b, err3 := inum(f[3])
		g, err4 := num(f[4])
		c, err5 := num(f[5])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return bad("junc: malformed fields")
		}
		if g <= 0 || c <= 0 {
			return bad("junc %d: conductance and capacitance must be positive", id)
		}
		if a == b {
			return bad("junc %d: endpoints must be distinct nodes", id)
		}
		for _, j := range d.juncs {
			if j.id == id {
				return bad("junc %d: duplicate junction id", id)
			}
		}
		d.juncs = append(d.juncs, juncDef{id: id, a: a, b: b, g: g, c: c, line: ln})
	case "cap":
		if err := need(3); err != nil {
			return err
		}
		a, err1 := inum(f[1])
		b, err2 := inum(f[2])
		c, err3 := num(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return bad("cap: malformed fields")
		}
		if c <= 0 {
			return bad("cap: capacitance must be positive")
		}
		if a == b {
			return bad("cap: endpoints must be distinct nodes")
		}
		d.caps = append(d.caps, capDef{a: a, b: b, c: c})
	case "charge":
		if err := need(2); err != nil {
			return err
		}
		n, err1 := inum(f[1])
		q, err2 := num(f[2])
		if err1 != nil || err2 != nil {
			return bad("charge: malformed fields")
		}
		d.charges[n] = q
	case "vdc":
		if err := need(2); err != nil {
			return err
		}
		n, err1 := inum(f[1])
		v, err2 := num(f[2])
		if err1 != nil || err2 != nil {
			return bad("vdc: malformed fields")
		}
		d.sources[n] = circuit.DC(v)
	case "vac":
		if len(f) != 5 && len(f) != 6 {
			return bad("vac needs: node offset amp freq [phase]")
		}
		n, err1 := inum(f[1])
		off, err2 := num(f[2])
		amp, err3 := num(f[3])
		freq, err4 := num(f[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return bad("vac: malformed fields")
		}
		phase := 0.0
		if len(f) == 6 {
			var err error
			if phase, err = num(f[5]); err != nil {
				return bad("vac: malformed phase")
			}
		}
		d.sources[n] = circuit.Sine{Offset: off, Amp: amp, Freq: freq, Phase: phase}
	case "vpwl":
		if len(f) < 6 || len(f)%2 != 0 {
			return bad("vpwl needs: node t0 v0 t1 v1 [...]")
		}
		n, err := inum(f[1])
		if err != nil {
			return bad("vpwl: malformed node")
		}
		var ts, vs []float64
		for i := 2; i < len(f); i += 2 {
			tv, err1 := num(f[i])
			vv, err2 := num(f[i+1])
			if err1 != nil || err2 != nil {
				return bad("vpwl: malformed breakpoint pair %q %q", f[i], f[i+1])
			}
			if len(ts) > 0 && tv <= ts[len(ts)-1] {
				return bad("vpwl: breakpoint times must increase")
			}
			ts = append(ts, tv)
			vs = append(vs, vv)
		}
		d.sources[n] = circuit.PWL{T: ts, Volt: vs}
	case "symm":
		if err := need(1); err != nil {
			return err
		}
		n, err := inum(f[1])
		if err != nil {
			return bad("symm: malformed node")
		}
		if d.Spec.Sweep == nil {
			d.Spec.Sweep = &SweepSpec{Mirror: n, Node: -1}
		} else {
			d.Spec.Sweep.Mirror = n
		}
	case "num":
		if err := need(2); err != nil {
			return err
		}
		v, err := inum(f[2])
		if err != nil {
			return bad("num: malformed count")
		}
		switch f[1] {
		case "j":
			d.declJ = v
		case "ext":
			d.declExt = v
		case "nodes":
			d.declNodes = v
		default:
			return bad("num: unknown kind %q", f[1])
		}
	case "temp":
		if err := need(1); err != nil {
			return err
		}
		t, err := num(f[1])
		if err != nil || t < 0 {
			return bad("temp: malformed temperature")
		}
		d.Spec.Temp = t
	case "cotunnel":
		d.Spec.Cotunnel = true
	case "super":
		if err := need(2); err != nil {
			return err
		}
		dEV, err1 := num(f[1])
		tc, err2 := num(f[2])
		if err1 != nil || err2 != nil || dEV <= 0 || tc <= 0 {
			return bad("super: needs Delta(0) in eV and Tc in K, both positive")
		}
		d.Spec.Super = &circuit.SuperParams{GapAt0: dEV * units.E, Tc: tc}
	case "record":
		if len(f) < 2 {
			return bad("record needs at least one junction id")
		}
		switch f[1] {
		case "noise":
			if len(f) < 3 {
				return bad("record noise needs: junction [omega ...]")
			}
			j, err := inum(f[2])
			if err != nil {
				return bad("record noise: malformed junction id %q", f[2])
			}
			for _, ns := range d.Spec.NoiseJuncs {
				if ns.Junc == j {
					return bad("record noise: junction %d already has a noise directive", j)
				}
			}
			ns := NoiseSpec{Junc: j}
			for _, s := range f[3:] {
				w, err := num(s)
				if err != nil || !(w > 0) {
					return bad("record noise: malformed angular frequency %q (rad/s, > 0)", s)
				}
				ns.Omegas = append(ns.Omegas, w)
			}
			d.Spec.NoiseJuncs = append(d.Spec.NoiseJuncs, ns)
			d.recordJunc(j)
		case "fano":
			if len(f) != 3 && len(f) != 4 {
				return bad("record fano needs: junction [window_seconds]")
			}
			j, err := inum(f[2])
			if err != nil {
				return bad("record fano: malformed junction id %q", f[2])
			}
			for _, fs := range d.Spec.FanoJuncs {
				if fs.Junc == j {
					return bad("record fano: junction %d already has a fano directive", j)
				}
			}
			fs := FanoSpec{Junc: j}
			if len(f) == 4 {
				tau, err := num(f[3])
				if err != nil || !(tau > 0) {
					return bad("record fano: malformed window %q (seconds, > 0)", f[3])
				}
				fs.Window = tau
			}
			d.Spec.FanoJuncs = append(d.Spec.FanoJuncs, fs)
			d.recordJunc(j)
		default:
			for _, s := range f[1:] {
				j, err := inum(s)
				if err != nil {
					return bad("record: malformed junction id %q", s)
				}
				d.Spec.RecordJuncs = append(d.Spec.RecordJuncs, j)
			}
		}
	case "probe":
		if len(f) < 2 {
			return bad("probe needs at least one node")
		}
		for _, s := range f[1:] {
			n, err := inum(s)
			if err != nil {
				return bad("probe: malformed node %q", s)
			}
			d.Spec.ProbeNodes = append(d.Spec.ProbeNodes, n)
		}
	case "jumps":
		if len(f) != 2 && len(f) != 3 {
			return bad("jumps needs: count [runs]")
		}
		n, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return bad("jumps: malformed count")
		}
		d.Spec.Jumps = n
		if len(f) == 3 {
			runs, err := inum(f[2])
			if err != nil || runs < 1 {
				return bad("jumps: malformed runs")
			}
			d.Spec.Runs = runs
		}
	case "time":
		if err := need(1); err != nil {
			return err
		}
		t, err := num(f[1])
		if err != nil || t <= 0 {
			return bad("time: malformed duration")
		}
		d.Spec.MaxTime = t
	case "sweep":
		if err := need(3); err != nil {
			return err
		}
		n, err1 := inum(f[1])
		mx, err2 := num(f[2])
		st, err3 := num(f[3])
		if err1 != nil || err2 != nil || err3 != nil || mx <= 0 || st <= 0 {
			return bad("sweep: needs node, max > 0, step > 0")
		}
		if d.Spec.Sweep == nil {
			d.Spec.Sweep = &SweepSpec{Mirror: -1}
		}
		d.Spec.Sweep.Node = n
		d.Spec.Sweep.Max = mx
		d.Spec.Sweep.Step = st
	case "map":
		if err := need(5); err != nil {
			return err
		}
		n, err1 := inum(f[2])
		lo, err2 := num(f[3])
		hi, err3 := num(f[4])
		pts, err4 := inum(f[5])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return bad("map: needs axis node min max points")
		}
		if lo >= hi {
			return bad("map: min must be below max")
		}
		if pts < 2 {
			return bad("map: needs at least 2 points per axis")
		}
		if d.Spec.Map == nil {
			d.Spec.Map = &MapSpec{}
		}
		ax := MapAxis{Node: n, Min: lo, Max: hi, Points: pts}
		switch f[1] {
		case "x":
			d.Spec.Map.X = ax
		case "y":
			d.Spec.Map.Y = ax
		default:
			return bad("map: axis must be x or y, got %q", f[1])
		}
	case "refine":
		if len(f) != 2 && len(f) != 3 {
			return bad("refine needs: depth [threshold]")
		}
		depth, err := inum(f[1])
		if err != nil || depth < 1 || depth > 12 {
			return bad("refine: depth must be in [1, 12]")
		}
		if d.Spec.Map == nil {
			d.Spec.Map = &MapSpec{}
		}
		d.Spec.Map.Depth = depth
		if len(f) == 3 {
			thr, err := num(f[2])
			if err != nil || thr <= 0 || thr >= 1 {
				return bad("refine: threshold must be in (0, 1)")
			}
			d.Spec.Map.Threshold = thr
		}
	case "seed":
		if err := need(1); err != nil {
			return err
		}
		s, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return bad("seed: malformed value")
		}
		d.Spec.Seed = s
	case "adaptive":
		if len(f) > 2 {
			return bad("adaptive takes an optional alpha")
		}
		d.Spec.Adaptive = true
		if len(f) == 2 {
			a, err := num(f[1])
			if err != nil || a <= 0 {
				return bad("adaptive: malformed alpha")
			}
			d.Spec.Alpha = a
		}
	case "refresh":
		if err := need(1); err != nil {
			return err
		}
		n, err := inum(f[1])
		if err != nil || n < 1 {
			return bad("refresh: malformed period")
		}
		d.Spec.RefreshEvery = n
	case "sparse":
		if err := need(0); err != nil {
			return err
		}
		d.Spec.Sparse = true
	case "parallel":
		if err := need(1); err != nil {
			return err
		}
		n, err := inum(f[1])
		if err != nil || n < 0 {
			return bad("parallel: malformed worker count (want >= 0)")
		}
		d.Spec.Parallel = n
	case "rate-tables":
		if err := need(0); err != nil {
			return err
		}
		d.Spec.RateTables = true
	case "cinv-eps":
		if err := need(1); err != nil {
			return err
		}
		v, err := num(f[1])
		if err != nil || v < 0 {
			return bad("cinv-eps: malformed threshold (want >= 0)")
		}
		d.Spec.CinvEps = v
		if v > 0 {
			d.Spec.Sparse = true
		}
	default:
		return bad("unknown directive %q", f[0])
	}
	return nil
}

func (d *Deck) validate() error {
	if len(d.juncs) == 0 {
		return fmt.Errorf("netlist: no junctions defined")
	}
	if d.declJ >= 0 && d.declJ != len(d.juncs) {
		return fmt.Errorf("netlist: num j declares %d junctions, found %d", d.declJ, len(d.juncs))
	}
	ext := len(d.sources)
	if _, hasGnd := d.sources[0]; !hasGnd && d.nodeUsed(0) {
		ext++ // implicit ground
	}
	if d.declExt >= 0 && d.declExt != len(d.sources) {
		return fmt.Errorf("netlist: num ext declares %d sources, found %d", d.declExt, len(d.sources))
	}
	if d.declNodes >= 0 {
		if n := d.maxNode(); n != d.declNodes {
			return fmt.Errorf("netlist: num nodes declares %d, highest referenced node is %d", d.declNodes, n)
		}
	}
	if sw := d.Spec.Sweep; sw != nil {
		if sw.Node < 0 {
			return fmt.Errorf("netlist: symm given without a sweep directive")
		}
		if _, ok := d.sources[sw.Node]; !ok {
			return fmt.Errorf("netlist: sweep node %d has no DC source", sw.Node)
		}
		if sw.Mirror >= 0 {
			if _, ok := d.sources[sw.Mirror]; !ok {
				return fmt.Errorf("netlist: symm node %d has no DC source", sw.Mirror)
			}
		}
	}
	if mp := d.Spec.Map; mp != nil {
		if d.Spec.Sweep != nil {
			return fmt.Errorf("netlist: map and sweep are mutually exclusive")
		}
		if mp.X.Points == 0 || mp.Y.Points == 0 {
			return fmt.Errorf("netlist: map needs both an x and a y axis (refine alone is not enough)")
		}
		for _, ax := range [2]MapAxis{mp.X, mp.Y} {
			src, ok := d.sources[ax.Node]
			if !ok {
				return fmt.Errorf("netlist: map node %d has no source", ax.Node)
			}
			if _, isDC := src.(circuit.DC); !isDC {
				return fmt.Errorf("netlist: map node %d must carry a DC source", ax.Node)
			}
		}
		if mp.X.Node == mp.Y.Node {
			return fmt.Errorf("netlist: map axes must sweep distinct nodes, both use %d", mp.X.Node)
		}
	}
	for n := range d.charges {
		if _, isSrc := d.sources[n]; isSrc || n == 0 {
			return fmt.Errorf("netlist: background charge on external node %d", n)
		}
	}
	return nil
}

func (d *Deck) nodeUsed(n int) bool {
	for _, j := range d.juncs {
		if j.a == n || j.b == n {
			return true
		}
	}
	for _, c := range d.caps {
		if c.a == n || c.b == n {
			return true
		}
	}
	return false
}

func (d *Deck) maxNode() int {
	m := 0
	up := func(n int) {
		if n > m {
			m = n
		}
	}
	for _, j := range d.juncs {
		up(j.a)
		up(j.b)
	}
	for _, c := range d.caps {
		up(c.a)
		up(c.b)
	}
	for n := range d.sources {
		up(n)
	}
	return m
}

// Compiled is the result of instantiating a deck: a built circuit plus
// the mapping from netlist numbering to circuit ids.
type Compiled struct {
	Circuit *circuit.Circuit
	Node    map[int]int // netlist node number -> circuit node id
	Junc    map[int]int // netlist junction id -> circuit junction id
}

// Compile builds a fresh circuit from the deck. dcOverride replaces the
// DC value of the given netlist nodes (used by sweep drivers); nodes in
// the map must carry DC sources.
func (d *Deck) Compile(dcOverride map[int]float64) (*Compiled, error) {
	c := circuit.New()
	nodeMap := map[int]int{}

	// Deterministic node creation order: sorted netlist numbers.
	var nums []int
	seen := map[int]bool{}
	add := func(n int) {
		if !seen[n] {
			seen[n] = true
			nums = append(nums, n)
		}
	}
	for _, j := range d.juncs {
		add(j.a)
		add(j.b)
	}
	for _, cp := range d.caps {
		add(cp.a)
		add(cp.b)
	}
	for n := range d.sources {
		add(n)
	}
	sort.Ints(nums)

	for _, n := range nums {
		src, isExt := d.sources[n]
		if n == 0 && !isExt {
			src, isExt = circuit.DC(0), true // implicit ground
		}
		if isExt {
			id := c.AddNode(fmt.Sprintf("n%d", n), circuit.External)
			if ov, ok := dcOverride[n]; ok {
				if _, isDC := src.(circuit.DC); !isDC {
					return nil, fmt.Errorf("netlist: DC override on non-DC source node %d", n)
				}
				src = circuit.DC(ov)
			}
			c.SetSource(id, src)
			nodeMap[n] = id
		} else {
			id := c.AddNode(fmt.Sprintf("n%d", n), circuit.Island)
			if q, ok := d.charges[n]; ok {
				c.SetBackgroundCharge(id, q*units.E)
			}
			nodeMap[n] = id
		}
	}
	for n := range dcOverride {
		if _, ok := d.sources[n]; !ok {
			return nil, fmt.Errorf("netlist: DC override on node %d which has no source", n)
		}
	}

	juncMap := map[int]int{}
	for _, j := range d.juncs {
		id := c.AddJunction(nodeMap[j.a], nodeMap[j.b], 1/j.g, j.c)
		juncMap[j.id] = id
	}
	for _, cp := range d.caps {
		c.AddCap(nodeMap[cp.a], nodeMap[cp.b], cp.c)
	}
	if d.Spec.Super != nil {
		c.SetSuper(*d.Spec.Super)
	}
	bo := circuit.BuildOptions{SparsePotentials: d.Spec.Sparse, CinvTruncation: d.Spec.CinvEps}
	if err := c.BuildWith(bo); err != nil {
		return nil, err
	}
	return &Compiled{Circuit: c, Node: nodeMap, Junc: juncMap}, nil
}
