package netlist

import (
	"fmt"
	"io"
	"sort"

	"semsim/internal/circuit"
	"semsim/internal/units"
)

// Format writes the deck back out in canonical input-file form, so
// programmatically built or modified decks can be saved and re-parsed.
// Parse(Format(d)) reproduces the deck exactly (round-trip tested).
func (d *Deck) Format(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# semsim input deck\n")
	for _, j := range d.juncs {
		p("junc %d %d %d %.17g %.17g\n", j.id, j.a, j.b, j.g, j.c)
	}
	for _, cp := range d.caps {
		p("cap %d %d %.17g\n", cp.a, cp.b, cp.c)
	}
	var chargeNodes []int
	for n := range d.charges {
		chargeNodes = append(chargeNodes, n)
	}
	sort.Ints(chargeNodes)
	for _, n := range chargeNodes {
		p("charge %d %.17g\n", n, d.charges[n])
	}

	var srcNodes []int
	for n := range d.sources {
		srcNodes = append(srcNodes, n)
	}
	sort.Ints(srcNodes)
	for _, n := range srcNodes {
		switch s := d.sources[n].(type) {
		case circuit.DC:
			p("vdc %d %.17g\n", n, float64(s))
		case circuit.Sine:
			p("vac %d %.17g %.17g %.17g %.17g\n", n, s.Offset, s.Amp, s.Freq, s.Phase)
		case circuit.PWL:
			p("vpwl %d", n)
			for i := range s.T {
				p(" %.17g %.17g", s.T[i], s.Volt[i])
			}
			p("\n")
		default:
			return fmt.Errorf("netlist: cannot format source type %T on node %d", s, n)
		}
	}

	sp := d.Spec
	if sp.Temp != 0 {
		p("temp %.17g\n", sp.Temp)
	}
	if sp.Cotunnel {
		p("cotunnel\n")
	}
	if sp.Super != nil {
		p("super %.17g %.17g\n", sp.Super.GapAt0/units.E, sp.Super.Tc)
	}
	if len(sp.RecordJuncs) > 0 {
		p("record")
		for _, j := range sp.RecordJuncs {
			p(" %d", j)
		}
		p("\n")
	}
	for _, ns := range sp.NoiseJuncs {
		p("record noise %d", ns.Junc)
		for _, w := range ns.Omegas {
			p(" %.17g", w)
		}
		p("\n")
	}
	for _, fs := range sp.FanoJuncs {
		if fs.Window > 0 {
			p("record fano %d %.17g\n", fs.Junc, fs.Window)
		} else {
			p("record fano %d\n", fs.Junc)
		}
	}
	if len(sp.ProbeNodes) > 0 {
		p("probe")
		for _, n := range sp.ProbeNodes {
			p(" %d", n)
		}
		p("\n")
	}
	if sp.Jumps > 0 {
		p("jumps %d %d\n", sp.Jumps, sp.Runs)
	}
	if sp.MaxTime > 0 {
		p("time %.17g\n", sp.MaxTime)
	}
	if sw := sp.Sweep; sw != nil {
		p("sweep %d %.17g %.17g\n", sw.Node, sw.Max, sw.Step)
		if sw.Mirror >= 0 {
			p("symm %d\n", sw.Mirror)
		}
	}
	if mp := sp.Map; mp != nil {
		p("map x %d %.17g %.17g %d\n", mp.X.Node, mp.X.Min, mp.X.Max, mp.X.Points)
		p("map y %d %.17g %.17g %d\n", mp.Y.Node, mp.Y.Min, mp.Y.Max, mp.Y.Points)
		if mp.Depth > 0 {
			if mp.Threshold > 0 {
				p("refine %d %.17g\n", mp.Depth, mp.Threshold)
			} else {
				p("refine %d\n", mp.Depth)
			}
		}
	}
	if sp.Seed != 0 {
		p("seed %d\n", sp.Seed)
	}
	if sp.Adaptive {
		p("adaptive %.17g\n", sp.Alpha)
	}
	if sp.RefreshEvery > 0 {
		p("refresh %d\n", sp.RefreshEvery)
	}
	// cinv-eps implies sparse on parse, so a bare "sparse" line is only
	// needed for the exact (eps = 0) sparse engine.
	if sp.Sparse && sp.CinvEps <= 0 {
		p("sparse\n")
	}
	if sp.CinvEps > 0 {
		p("cinv-eps %.17g\n", sp.CinvEps)
	}
	if sp.Parallel != 0 {
		p("parallel %d\n", sp.Parallel)
	}
	if sp.RateTables {
		p("rate-tables\n")
	}
	return err
}
