package netlist

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// deckDirectives is every directive keyword the parser understands,
// including the compound `record noise` / `record fano` sub-forms.
// Adding a case to (*Deck).directive without extending this list —
// and documenting it in docs/DECK.md — fails TestDeckDocCoverage.
var deckDirectives = []string{
	"junc", "cap", "charge",
	"vdc", "vac", "vpwl", "symm",
	"num",
	"temp", "cotunnel", "super",
	"record", "record noise", "record fano", "probe",
	"jumps", "time", "sweep", "map", "refine", "seed",
	"adaptive", "refresh",
	"sparse", "cinv-eps", "parallel", "rate-tables",
}

// docExamples extracts the fenced ```deck blocks from docs/DECK.md.
func docExamples(t *testing.T) []string {
	t.Helper()
	blob, err := os.ReadFile("../../docs/DECK.md")
	if err != nil {
		t.Fatalf("docs/DECK.md must exist and document the deck format: %v", err)
	}
	var examples []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(blob), "\n") {
		switch {
		case strings.HasPrefix(line, "```deck"):
			in = true
			cur = nil
		case in && strings.HasPrefix(line, "```"):
			in = false
			examples = append(examples, strings.Join(cur, "\n")+"\n")
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatal("docs/DECK.md: unterminated ```deck block")
	}
	if len(examples) == 0 {
		t.Fatal("docs/DECK.md contains no ```deck examples")
	}
	return examples
}

// TestDeckDocExamplesExecute parses every documented example and
// round-trips it through the canonical writer: Format output must
// re-parse to a deck that formats identically (the writer's fixpoint).
// Documentation that does not parse is a bug in the documentation.
func TestDeckDocExamplesExecute(t *testing.T) {
	for i, src := range docExamples(t) {
		t.Run(fmt.Sprintf("example_%d", i+1), func(t *testing.T) {
			d, err := Parse(strings.NewReader(src))
			if err != nil {
				t.Fatalf("documented example does not parse: %v\n%s", err, src)
			}
			var canon bytes.Buffer
			if err := d.Format(&canon); err != nil {
				t.Fatalf("documented example does not format: %v", err)
			}
			d2, err := Parse(strings.NewReader(canon.String()))
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon.String())
			}
			var again bytes.Buffer
			if err := d2.Format(&again); err != nil {
				t.Fatal(err)
			}
			if canon.String() != again.String() {
				t.Fatalf("Format is not a fixpoint over the documented example:\nfirst:\n%s\nsecond:\n%s", canon.String(), again.String())
			}
			// Executable in the fuller sense: every example must compile
			// into a circuit, not just parse.
			if _, err := d.Compile(nil); err != nil {
				t.Fatalf("documented example does not compile: %v", err)
			}
		})
	}
}

// TestDeckDocCoverage asserts docs/DECK.md exercises every directive
// the parser knows, in a runnable example — not just in prose.
func TestDeckDocCoverage(t *testing.T) {
	used := map[string]bool{}
	for _, src := range docExamples(t) {
		for _, line := range strings.Split(src, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "*") {
				continue
			}
			f := strings.Fields(line)
			used[f[0]] = true
			// Compound directives are keyed on their first two tokens,
			// so each sub-form needs its own runnable example.
			if f[0] == "record" && len(f) > 1 && (f[1] == "noise" || f[1] == "fano") {
				used[f[0]+" "+f[1]] = true
			}
		}
	}
	blob, err := os.ReadFile("../../docs/DECK.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(blob)
	for _, dir := range deckDirectives {
		if !used[dir] {
			t.Errorf("directive %q appears in no runnable docs/DECK.md example", dir)
		}
		if !strings.Contains(doc, "`"+dir+"`") {
			t.Errorf("directive %q is not documented (no `%s` in docs/DECK.md)", dir, dir)
		}
	}
	for dir := range used {
		found := false
		for _, known := range deckDirectives {
			if dir == known {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("docs/DECK.md example uses %q, which the parser does not know", dir)
		}
	}
}
