package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNetlistParse drives the deck parser with arbitrary input. Any
// input may be rejected with an error, but never a panic; input the
// parser accepts must survive the canonical round trip: Format output
// reparses cleanly, formats identically the second time, and Compile
// either errors or yields a circuit.
func FuzzNetlistParse(f *testing.F) {
	f.Add(paperDeck)
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.01\ntemp 1\n")
	f.Add("# comment only\n\n")
	f.Add("vac 3 0 0.01 1e9 0.5\nvpwl 2 0 0 1e-9 0.1\njunc 1 2 3 1e-6 1e-18\n")
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.01\nsuper 0.2e-3 1.2\ntemp 0.1\n")
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.02\nsweep 1 0.02 0.0001\nsymm 1\n")
	f.Add("num j 99\njunc 1 1 2 1e-6 1e-18\n")
	f.Add("junc x y z\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := d.Format(&first); err != nil {
			t.Fatalf("formatting a parsed deck failed: %v\ninput:\n%s", err, src)
		}
		d2, err := Parse(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparsing formatted deck failed: %v\nformatted:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := d2.Format(&second); err != nil {
			t.Fatalf("reformatting failed: %v", err)
		}
		if first.String() != second.String() {
			t.Errorf("Format is not canonical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if c, err := d.Compile(nil); err == nil && c == nil {
			t.Error("Compile returned neither circuit nor error")
		}
	})
}
