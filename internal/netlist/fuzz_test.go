package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNetlistParse drives the deck parser with arbitrary input. Any
// input may be rejected with an error, but never a panic; input the
// parser accepts must survive the canonical round trip: Format output
// reparses cleanly, formats identically the second time, and Compile
// either errors or yields a circuit.
func FuzzNetlistParse(f *testing.F) {
	f.Add(paperDeck)
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.01\ntemp 1\n")
	f.Add("# comment only\n\n")
	f.Add("vac 3 0 0.01 1e9 0.5\nvpwl 2 0 0 1e-9 0.1\njunc 1 2 3 1e-6 1e-18\n")
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.01\nsuper 0.2e-3 1.2\ntemp 0.1\n")
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.02\nsweep 1 0.02 0.0001\nsymm 1\n")
	f.Add("num j 99\njunc 1 1 2 1e-6 1e-18\n")
	f.Add("junc x y z\n")
	f.Add("junc 1 1 2 1e-6 1e-18\nvdc 1 0.01\nsparse\n")
	f.Add("junc 1 1 2 1e-6 1e-18\ncap 2 3 2e-18\nvdc 1 0.01\nvdc 3 0\ncinv-eps 1e-9\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := d.Format(&first); err != nil {
			t.Fatalf("formatting a parsed deck failed: %v\ninput:\n%s", err, src)
		}
		d2, err := Parse(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparsing formatted deck failed: %v\nformatted:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := d2.Format(&second); err != nil {
			t.Fatalf("reformatting failed: %v", err)
		}
		if first.String() != second.String() {
			t.Errorf("Format is not canonical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		c, err := d.Compile(nil)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("Compile returned neither circuit nor error")
		}
		// Every compilable deck must also assemble through the sparse CSR
		// path, and with eps = 0 its island potentials must match the
		// dense engine bitwise (the exact sparse rows store the same
		// floats as the dense inverse).
		if d.Spec.Sparse || d.Spec.CinvEps > 0 {
			return
		}
		ds := *d
		ds.Spec.Sparse = true
		ds.Spec.CinvEps = 0
		cs, err := ds.Compile(nil)
		if err != nil {
			t.Fatalf("sparse compile failed where dense succeeded: %v\ninput:\n%s", err, src)
		}
		ni := c.Circuit.NumIslands()
		ns := make([]int, ni)
		for i := range ns {
			ns[i] = i%3 - 1
		}
		vd := c.Circuit.IslandPotentials(nil, ns, 1e-10)
		vs := cs.Circuit.IslandPotentials(nil, ns, 1e-10)
		for i := range vd {
			if vd[i] != vs[i] {
				t.Errorf("island %d: dense potential %v, sparse %v\ninput:\n%s", i, vd[i], vs[i], src)
			}
		}
	})
}
