package netlist

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"semsim/internal/rng"
)

func TestFormatRoundTrip(t *testing.T) {
	src := `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 2e-6 1.5e-18
cap 3 4 3e-18
charge 4 0.65
vdc 1 0.02
vdc 2 -0.02
vac 3 0 0.001 1e8 0.5
temp 5
cotunnel
record 1 2
probe 4
jumps 1000 3
time 1e-6
sweep 2 0.02 0.001
symm 1
seed 42
adaptive 0.1
refresh 512
parallel 4
rate-tables
`
	d1, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.Format(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse of formatted deck: %v\n---\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(d1.Spec, d2.Spec) {
		t.Fatalf("spec changed across round trip:\n%+v\nvs\n%+v", d1.Spec, d2.Spec)
	}
	if !reflect.DeepEqual(d1.juncs[0], d2.juncs[0]) && d1.juncs[0].g != d2.juncs[0].g {
		t.Fatalf("junction changed across round trip")
	}
	if len(d1.juncs) != len(d2.juncs) || len(d1.caps) != len(d2.caps) {
		t.Fatal("element counts changed across round trip")
	}
	if d1.charges[4] != d2.charges[4] {
		t.Fatal("background charge changed across round trip")
	}
	// Compiled circuits must be electrically identical.
	c1, err := d1.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d2.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Circuit.NumJunctions() != c2.Circuit.NumJunctions() ||
		c1.Circuit.NumIslands() != c2.Circuit.NumIslands() {
		t.Fatal("compiled circuits differ")
	}
}

func TestFormatMapRoundTrip(t *testing.T) {
	for _, refine := range []string{"", "refine 3\n", "refine 3 0.25\n"} {
		src := `
junc 1 1 3 1e-6 1e-18
vdc 1 0.01
vdc 2 0
cap 2 3 1e-18
temp 5
record 1
jumps 1000
map x 2 -0.08 0.08 17
map y 1 -0.05 0.05 9
` + refine
		d1, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d1.Format(&buf); err != nil {
			t.Fatal(err)
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of formatted map deck: %v\n---\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(d1.Spec.Map, d2.Spec.Map) {
			t.Fatalf("map spec changed across round trip (%q):\n%+v\nvs\n%+v", refine, d1.Spec.Map, d2.Spec.Map)
		}
	}
}

func TestFormatSuperAndPWL(t *testing.T) {
	src := `
junc 1 1 2 4.76e-6 110e-18
vdc 1 0.001
vpwl 2 0 0 1e-9 0.01 2e-9 0.01
temp 0.52
super 0.00021 1.4
record 1
jumps 100
`
	d1, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.Format(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n---\n%s", err, buf.String())
	}
	if d2.Spec.Super == nil || d2.Spec.Super.Tc != 1.4 {
		t.Fatal("super lost in round trip")
	}
	got := d2.sources[2].V(0.5e-9)
	if got != 0.005 {
		t.Fatalf("PWL midpoint after round trip = %g", got)
	}
}

func TestFormatRoundTripRandomDecks(t *testing.T) {
	// Property: any deck this generator produces survives
	// Format -> Parse with its spec and element counts intact.
	gen := func(seed uint64) string {
		r := rng.New(seed)
		var sb strings.Builder
		nIsl := 1 + r.Intn(3)
		nExt := 1 + r.Intn(3)
		// Externals are nodes 1..nExt, islands follow.
		jid := 1
		for i := 0; i < nIsl; i++ {
			isl := nExt + 1 + i
			lead := 1 + r.Intn(nExt)
			fmt.Fprintf(&sb, "junc %d %d %d %g %g\n", jid, lead, isl,
				1e-7+r.Float64()*1e-5, (0.5+r.Float64())*1e-18)
			jid++
			if r.Intn(2) == 0 {
				fmt.Fprintf(&sb, "cap %d %d %g\n", isl, 1+r.Intn(nExt), (1+r.Float64())*1e-18)
			}
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, "charge %d %g\n", isl, r.Float64()-0.5)
			}
		}
		for n := 1; n <= nExt; n++ {
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "vdc %d %g\n", n, r.Float64()*0.1-0.05)
			case 1:
				fmt.Fprintf(&sb, "vac %d %g %g %g %g\n", n, r.Float64()*0.01, r.Float64()*0.01, 1e8+r.Float64()*1e9, r.Float64())
			default:
				fmt.Fprintf(&sb, "vpwl %d 0 0 %g %g\n", n, 1e-9+r.Float64()*1e-8, r.Float64()*0.05)
			}
		}
		fmt.Fprintf(&sb, "temp %g\njumps %d %d\nseed %d\n",
			0.1+r.Float64()*10, 100+r.Intn(10000), 1+r.Intn(4), r.Uint64()%1e6)
		fmt.Fprintf(&sb, "record 1\n")
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "adaptive %g\nrefresh %d\n", 0.01+r.Float64()*0.2, 64+r.Intn(4096))
		}
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "parallel %d\n", r.Intn(8))
		}
		if r.Intn(3) == 0 {
			fmt.Fprintf(&sb, "rate-tables\n")
		}
		return sb.String()
	}
	for seed := uint64(0); seed < 60; seed++ {
		src := gen(seed)
		d1, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Fatalf("seed %d: generated deck invalid: %v\n%s", seed, err, src)
		}
		var buf bytes.Buffer
		if err := d1.Format(&buf); err != nil {
			t.Fatalf("seed %d: format: %v", seed, err)
		}
		d2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, buf.String())
		}
		if !reflect.DeepEqual(d1.Spec, d2.Spec) {
			t.Fatalf("seed %d: spec drift:\n%+v\nvs\n%+v", seed, d1.Spec, d2.Spec)
		}
		if len(d1.juncs) != len(d2.juncs) || len(d1.caps) != len(d2.caps) ||
			len(d1.charges) != len(d2.charges) || len(d1.sources) != len(d2.sources) {
			t.Fatalf("seed %d: element counts drifted", seed)
		}
	}
}

func TestFormatMinimalDeck(t *testing.T) {
	d, err := Parse(strings.NewReader("junc 1 0 1 1e-6 1e-18\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(&buf); err != nil {
		t.Fatalf("minimal deck round trip: %v", err)
	}
}
