package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// noiseDeck is paperDeck with noise recording: a spectral grid on
// junction 1 and windowed counting statistics on junction 2.
const noiseDeck = `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
num j 2
num ext 3
num nodes 4
temp 5
record noise 1 1e8 2.5e8 1e9
record fano 2 4e-9
jumps 1000 1
sweep 2 0.02 0.01
`

func TestRecordNoiseDirective(t *testing.T) {
	d, err := Parse(strings.NewReader(noiseDeck))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spec.NoiseJuncs) != 1 {
		t.Fatalf("NoiseJuncs = %+v, want one entry", d.Spec.NoiseJuncs)
	}
	ns := d.Spec.NoiseJuncs[0]
	if ns.Junc != 1 || len(ns.Omegas) != 3 || ns.Omegas[0] != 1e8 || ns.Omegas[1] != 2.5e8 || ns.Omegas[2] != 1e9 {
		t.Errorf("record noise parsed as %+v", ns)
	}
	if len(d.Spec.FanoJuncs) != 1 {
		t.Fatalf("FanoJuncs = %+v, want one entry", d.Spec.FanoJuncs)
	}
	fs := d.Spec.FanoJuncs[0]
	if fs.Junc != 2 || fs.Window != 4e-9 {
		t.Errorf("record fano parsed as %+v", fs)
	}
	// Noise recording implies current recording on the same junctions,
	// without duplicating ids.
	if len(d.Spec.RecordJuncs) != 2 || d.Spec.RecordJuncs[0] != 1 || d.Spec.RecordJuncs[1] != 2 {
		t.Errorf("RecordJuncs = %v, want [1 2]", d.Spec.RecordJuncs)
	}
	if _, err := d.Compile(nil); err != nil {
		t.Fatalf("noise deck does not compile: %v", err)
	}
}

// TestRecordNoiseFormatRoundTrip: the canonical writer must preserve
// both directives bit-exactly through a Parse → Format → Parse cycle.
func TestRecordNoiseFormatRoundTrip(t *testing.T) {
	d, err := Parse(strings.NewReader(noiseDeck + "record fano 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Format(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, buf.String())
	}
	if len(d2.Spec.NoiseJuncs) != 1 || len(d2.Spec.FanoJuncs) != 2 {
		t.Fatalf("round trip lost directives: %+v %+v", d2.Spec.NoiseJuncs, d2.Spec.FanoJuncs)
	}
	for i, ns := range d.Spec.NoiseJuncs {
		ns2 := d2.Spec.NoiseJuncs[i]
		if ns2.Junc != ns.Junc || len(ns2.Omegas) != len(ns.Omegas) {
			t.Fatalf("NoiseSpec %d changed: %+v -> %+v", i, ns, ns2)
		}
		for k := range ns.Omegas {
			if ns2.Omegas[k] != ns.Omegas[k] {
				t.Errorf("omega %d changed: %g -> %g", k, ns.Omegas[k], ns2.Omegas[k])
			}
		}
	}
	for i, fs := range d.Spec.FanoJuncs {
		if d2.Spec.FanoJuncs[i] != fs {
			t.Errorf("FanoSpec %d changed: %+v -> %+v", i, fs, d2.Spec.FanoJuncs[i])
		}
	}
	var again bytes.Buffer
	if err := d2.Format(&again); err != nil {
		t.Fatal(err)
	}
	if buf.String() != again.String() {
		t.Errorf("Format not a fixpoint:\n%s\nvs\n%s", buf.String(), again.String())
	}
}

func TestRecordNoiseErrors(t *testing.T) {
	base := `
junc 1 1 3 1e-6 1e-18
junc 2 2 3 1e-6 1e-18
vdc 1 0.02
vdc 2 -0.02
num j 2
num ext 2
num nodes 3
jumps 100 1
sweep 1 0.02 0.01
`
	cases := map[string]string{
		"noise without junction":  "record noise\n",
		"noise bad junction":      "record noise x 1e8\n",
		"noise zero omega":        "record noise 1 0\n",
		"noise negative omega":    "record noise 1 -1e8\n",
		"noise malformed omega":   "record noise 1 hz\n",
		"noise duplicate":         "record noise 1 1e8\nrecord noise 1 2e8\n",
		"fano without junction":   "record fano\n",
		"fano bad junction":       "record fano x\n",
		"fano zero window":        "record fano 1 0\n",
		"fano negative window":    "record fano 1 -1e-9\n",
		"fano malformed window":   "record fano 1 soon\n",
		"fano duplicate":          "record fano 1\nrecord fano 1 1e-9\n",
		"fano trailing fields":    "record fano 1 1e-9 2e-9\n",
		"plain record bad suffix": "record 1 noise\n",
	}
	for name, dir := range cases {
		if _, err := Parse(strings.NewReader(base + dir)); err == nil {
			t.Errorf("%s: parser accepted %q", name, dir)
		}
	}
}
