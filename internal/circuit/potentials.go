package circuit

// The potential engine: one object owning every C^-1-mediated quantity
// the solver reads — per-event potential shifts, full potential solves,
// free-energy changes and external-input deltas. A circuit always has a
// built-in engine (dense by default); sparse views over the same
// circuit are derived on demand through PotentialEngine.
//
// Two backends share the interface:
//
//   - dense: the explicit inverse from the Cholesky factorization, full
//     rows, O(n) per event. The reference implementation.
//   - sparse: ε-truncated C^-1 rows in CSR form. Each row keeps only
//     entries with |v| >= ε·‖row‖∞; per-event shifts and refresh solves
//     walk stored nonzeros only, O(k) per row. With ε = 0 the stored
//     values are exactly the dense inverse's (only exact zeros are
//     dropped), so every accumulation visits the same floats in the
//     same order and trajectories are bit-identical to the dense
//     engine. With ε > 0 the engine carries a provable per-potential
//     error bound (EventErrorBound / RefreshErrorBound /
//     InputErrorBound) that the solver accumulates into its Stats.
//
// C^-1 entries of a diagonally dominant capacitance matrix decay
// exponentially with graph distance, which is why a relative threshold
// as small as 1e-8 already drops the vast majority of entries on the
// logic benchmarks while the bound stays far below thermal noise.

import (
	"errors"
	"fmt"
	"math"

	"semsim/internal/matrix"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// BuildOptions selects the potential backend assembled by BuildWith.
type BuildOptions struct {
	// SparsePotentials builds the sparse locality-aware potential
	// engine instead of the dense inverse. With CinvTruncation = 0 the
	// dense inverse is still computed once and compressed (bit-identical
	// trajectories, no memory saving); with CinvTruncation > 0 the
	// dense inverse is never formed: C is factored sparsely under an
	// RCM ordering and C^-1 rows are computed by sparse solves, which
	// on multi-thousand-island circuits is orders of magnitude faster
	// than dense inversion.
	SparsePotentials bool
	// CinvTruncation is the relative row-truncation threshold ε:
	// entries of a C^-1 row (and of mext) smaller in magnitude than
	// ε·‖row‖∞ are dropped. 0 keeps everything (exact). Implies
	// SparsePotentials.
	CinvTruncation float64
}

// Potentials is a potential engine bound to one built circuit. It is
// immutable after construction and safe for concurrent readers.
type Potentials struct {
	c      *Circuit
	sparse bool
	eps    float64

	// Sparse backend: ε-truncated C^-1 rows and mext rows, CSR layout.
	// Row i of C^-1 occupies rowCol/rowVal[rowPtr[i]:rowPtr[i+1]]; the
	// mext (external-coupling) rows use mPtr/mCol/mVal the same way.
	rowPtr []int
	rowCol []int32
	rowVal []float64
	mPtr   []int
	mCol   []int32
	mVal   []float64

	// Truncation error metadata; all zero for dense and ε = 0 engines.
	dropInf    float64 // largest dropped |C^-1 entry| over all rows
	dropL1     float64 // largest per-row sum of dropped |C^-1 entries|
	mextDropL1 float64 // largest per-row sum of dropped |mext entries|
	fill       float64 // sparse Cholesky fill nnz(L)/nnz(tril(C)); 0 when derived from a dense inverse
}

// Sparse reports whether the engine walks truncated rows (true) or full
// dense rows (false).
func (p *Potentials) Sparse() bool { return p.sparse }

// Eps returns the relative truncation threshold (0 for exact engines).
func (p *Potentials) Eps() float64 { return p.eps }

// Truncated reports whether the engine has dropped any nonzero entry,
// i.e. whether its potentials deviate from the exact solve at all.
func (p *Potentials) Truncated() bool { return p.dropInf > 0 || p.mextDropL1 > 0 }

// NNZ returns the number of stored C^-1 entries (n^2 for dense).
func (p *Potentials) NNZ() int {
	if !p.sparse {
		n := len(p.c.islands)
		return n * n
	}
	return len(p.rowVal)
}

// TruncationRatio returns stored C^-1 entries as a fraction of the full
// n^2 (1 for dense engines).
func (p *Potentials) TruncationRatio() float64 {
	n := len(p.c.islands)
	if n == 0 {
		return 0
	}
	return float64(p.NNZ()) / (float64(n) * float64(n))
}

// Fill returns the sparse Cholesky fill-in ratio nnz(L)/nnz(tril(C)) of
// the factorization behind a natively built sparse engine, or 0 when
// the engine was derived from a dense inverse (no sparse factor).
func (p *Potentials) Fill() float64 { return p.fill }

// at returns C^-1 element (i, j) in island coordinates.
func (p *Potentials) at(i, j int) float64 {
	if !p.sparse {
		return p.c.cinv.At(i, j)
	}
	cols := p.rowCol[p.rowPtr[i]:p.rowPtr[i+1]]
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == j {
		return p.rowVal[p.rowPtr[i]+lo]
	}
	return 0
}

// Cinv returns the (a, b) element of C^-1 by node id; entries involving
// external nodes are zero (a voltage source absorbs charge with no
// potential change).
func (p *Potentials) Cinv(a, b int) float64 {
	ia, ib := p.c.islandIdx[a], p.c.islandIdx[b]
	if ia < 0 || ib < 0 {
		return 0
	}
	return p.at(ia, ib)
}

// DeltaW returns the free-energy change (joules) for a carrier of
// charge -q to tunnel src -> dst given the pre-event node potentials
// (Eq. 2 of the paper; see Circuit.DeltaW).
func (p *Potentials) DeltaW(src, dst int, q, vSrc, vDst float64) float64 {
	self := p.Cinv(src, src) - 2*p.Cinv(src, dst) + p.Cinv(dst, dst)
	return -q*(vDst-vSrc) + self*q*q/2
}

// DeltaWElectron is DeltaW for a single electron.
func (p *Potentials) DeltaWElectron(src, dst int, vSrc, vDst float64) float64 {
	return p.DeltaW(src, dst, units.E, vSrc, vDst)
}

// PotentialShift returns the island-k potential change caused by moving
// charge mq from node src to node dst: mq*(Cinv[k][src] - Cinv[k][dst]).
func (p *Potentials) PotentialShift(k, src, dst int, mq float64) float64 {
	acc := 0.0
	if i := p.c.islandIdx[src]; i >= 0 {
		acc += p.at(k, i)
	}
	if i := p.c.islandIdx[dst]; i >= 0 {
		acc -= p.at(k, i)
	}
	return mq * acc
}

// Shift applies the potential change of one transfer of charge mq from
// src to dst to every island potential in v, returning the number of
// row entries touched (the per-event work the obs layer histograms).
// The dense path is a fused pass over two full C^-1 rows; the sparse
// path walks only stored nonzeros.
func (p *Potentials) Shift(v []float64, src, dst int, mq float64) int {
	touched := 0
	if !p.sparse {
		if k := p.c.islandIdx[src]; k >= 0 {
			row := p.c.cinv.Row(k)
			for i := range v {
				v[i] += mq * row[i]
			}
			touched += len(v)
		}
		if k := p.c.islandIdx[dst]; k >= 0 {
			row := p.c.cinv.Row(k)
			for i := range v {
				v[i] -= mq * row[i]
			}
			touched += len(v)
		}
		return touched
	}
	if k := p.c.islandIdx[src]; k >= 0 {
		lo, hi := p.rowPtr[k], p.rowPtr[k+1]
		cols, vals := p.rowCol[lo:hi], p.rowVal[lo:hi]
		for idx, cc := range cols {
			v[cc] += mq * vals[idx]
		}
		touched += hi - lo
	}
	if k := p.c.islandIdx[dst]; k >= 0 {
		lo, hi := p.rowPtr[k], p.rowPtr[k+1]
		cols, vals := p.rowCol[lo:hi], p.rowVal[lo:hi]
		for idx, cc := range cols {
			v[cc] -= mq * vals[idx]
		}
		touched += hi - lo
	}
	return touched
}

// SolveRange computes rows [lo, hi) of the potential solve
// v = Cinv*q + mext*vext into dst (island order). Rows are independent,
// so disjoint ranges may run concurrently; see RowShards for
// nnz-balanced shard boundaries on sparse engines.
func (p *Potentials) SolveRange(dst, q, vext []float64, lo, hi int) {
	if !p.sparse {
		for i := lo; i < hi; i++ {
			row := p.c.cinv.Row(i)
			acc := 0.0
			for k, qk := range q {
				acc += row[k] * qk
			}
			for s, vs := range vext {
				acc += p.c.mext[i][s] * vs
			}
			dst[i] = acc
		}
		return
	}
	for i := lo; i < hi; i++ {
		acc := 0.0
		for idx := p.rowPtr[i]; idx < p.rowPtr[i+1]; idx++ {
			acc += p.rowVal[idx] * q[p.rowCol[idx]]
		}
		for idx := p.mPtr[i]; idx < p.mPtr[i+1]; idx++ {
			acc += p.mVal[idx] * vext[p.mCol[idx]]
		}
		dst[i] = acc
	}
}

// ExternalDelta fills dst (island order) with the island potential
// change caused by external voltages moving from vext0 to vext1:
// dv = mext * (v1 - v0).
func (p *Potentials) ExternalDelta(dst, vext0, vext1 []float64) {
	if !p.sparse {
		for i := range dst {
			acc := 0.0
			for s := range vext0 {
				acc += p.c.mext[i][s] * (vext1[s] - vext0[s])
			}
			dst[i] = acc
		}
		return
	}
	for i := range dst {
		acc := 0.0
		for idx := p.mPtr[i]; idx < p.mPtr[i+1]; idx++ {
			s := p.mCol[idx]
			acc += p.mVal[idx] * (vext1[s] - vext0[s])
		}
		dst[i] = acc
	}
}

// RowShards returns parts+1 monotone row boundaries splitting
// [0, NumIslands) into contiguous shards of approximately equal stored
// nonzero count, so a parallel refresh stays balanced when truncation
// leaves skewed row lengths. Dense engines return nil (equal row counts
// are already balanced).
func (p *Potentials) RowShards(parts int) []int {
	if !p.sparse || parts <= 1 {
		return nil
	}
	ni := len(p.c.islands)
	if parts > ni {
		parts = ni
	}
	bounds := make([]int, parts+1)
	bounds[parts] = ni
	total := p.rowPtr[ni] + p.mPtr[ni]
	row := 0
	for w := 1; w < parts; w++ {
		target := total * w / parts
		for row < ni && p.rowPtr[row]+p.mPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	return bounds
}

// --- Truncation error bounds ---
//
// Write the stored row as Cinv[k] = exact[k] - err[k] where err[k]
// holds the dropped entries. Then:
//
//   - one Shift of charge q perturbs island i by
//     q*(err[i][src] - err[i][dst]), bounded by 2*q*dropInf;
//   - a full solve v = Cinv*q + mext*vext is off by
//     err[i]·q + errM[i]·vext, bounded per island by
//     dropL1*max|q| + mextDropL1*max|vext|;
//   - an input change dv = mext*(v1-v0) is off by errM[i]·(v1-v0),
//     bounded by mextDropL1*max|v1-v0|.
//
// The solver keeps a running bound: reset to the refresh bound at each
// full refresh, incremented by the event/input terms in between.

// EventErrorBound bounds the per-island potential error introduced by
// one Shift of charge q. Zero for exact engines.
func (p *Potentials) EventErrorBound(q float64) float64 {
	return 2 * q * p.dropInf
}

// RefreshErrorBound bounds the per-island error of a full SolveRange
// given the largest island charge magnitude and external voltage
// magnitude. Zero for exact engines.
func (p *Potentials) RefreshErrorBound(qmax, vmax float64) float64 {
	return p.dropL1*qmax + p.mextDropL1*vmax
}

// InputErrorBound bounds the per-island error of one ExternalDelta
// given the largest source-voltage change magnitude. Zero for exact
// engines.
func (p *Potentials) InputErrorBound(dvmax float64) float64 {
	return p.mextDropL1 * dvmax
}

// --- Construction ---

func newDensePotentials(c *Circuit) *Potentials {
	return &Potentials{c: c}
}

// truncRow appends the entries of dense row `row` with magnitude at
// least eps*‖row‖∞ to (cols, vals), always dropping exact zeros, and
// returns the updated slices plus the L1 sum and max magnitude of the
// dropped entries.
func truncRow(cols []int32, vals []float64, row []float64, eps float64) ([]int32, []float64, float64, float64) {
	rmax := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > rmax {
			rmax = a
		}
	}
	thr := eps * rmax
	dropSum, dropMax := 0.0, 0.0
	for j, v := range row {
		if v == 0 {
			continue
		}
		if a := math.Abs(v); a < thr {
			dropSum += a
			if a > dropMax {
				dropMax = a
			}
			continue
		}
		cols = append(cols, int32(j))
		vals = append(vals, v)
	}
	return cols, vals, dropSum, dropMax
}

// newSparseFromDense compresses an already-computed dense inverse into
// truncated rows. With eps = 0 only exact zeros are dropped, so the
// stored values are the dense inverse's own floats — the basis of the
// sparse engine's bit-identity guarantee.
func newSparseFromDense(c *Circuit, eps float64) *Potentials {
	ni := len(c.islands)
	p := &Potentials{c: c, sparse: true, eps: eps,
		rowPtr: make([]int, ni+1), mPtr: make([]int, ni+1)}
	for i := 0; i < ni; i++ {
		var ds, dm float64
		p.rowCol, p.rowVal, ds, dm = truncRow(p.rowCol, p.rowVal, c.cinv.Row(i), eps)
		p.rowPtr[i+1] = len(p.rowCol)
		if ds > p.dropL1 {
			p.dropL1 = ds
		}
		if dm > p.dropInf {
			p.dropInf = dm
		}
		p.mCol, p.mVal, ds, dm = truncRow(p.mCol, p.mVal, c.mext[i], eps)
		p.mPtr[i+1] = len(p.mCol)
		if ds > p.mextDropL1 {
			p.mextDropL1 = ds
		}
	}
	return p
}

// newSparseNative builds a truncated engine without ever forming the
// dense inverse: C is factored sparsely under an RCM ordering and each
// C^-1 row is computed by one sparse solve, truncated, and stored. On
// multi-thousand-island circuits this replaces the O(n^3) dense
// inversion (minutes) with O(n·nnz(L)) solves (seconds).
func newSparseNative(c *Circuit, eps float64) (*Potentials, error) {
	ni, ne := len(c.islands), len(c.externals)
	perm := matrix.RCM(c.ccsr)
	chol, err := matrix.FactorCSR(c.ccsr, perm)
	if err != nil {
		return nil, err
	}
	p := &Potentials{c: c, sparse: true, eps: eps,
		rowPtr: make([]int, ni+1), mPtr: make([]int, ni+1)}
	if l := c.ccsr.LowerNNZ(); l > 0 {
		p.fill = float64(chol.NNZ()) / float64(l)
	}
	// Sparse view of the island-external coupling for the mext rows.
	var cieK []int32
	var cieS []int32
	var cieV []float64
	for k := 0; k < ni; k++ {
		for s := 0; s < ne; s++ {
			if v := c.cie[k][s]; v != 0 {
				cieK = append(cieK, int32(k))
				cieS = append(cieS, int32(s))
				cieV = append(cieV, v)
			}
		}
	}
	row := make([]float64, ni)
	w := make([]float64, ni)
	mrow := make([]float64, ne)
	for i := 0; i < ni; i++ {
		chol.InverseRow(i, row, w)
		for s := range mrow {
			mrow[s] = 0
		}
		for idx, k := range cieK {
			mrow[cieS[idx]] += row[k] * cieV[idx]
		}
		var ds, dm float64
		p.rowCol, p.rowVal, ds, dm = truncRow(p.rowCol, p.rowVal, row, eps)
		p.rowPtr[i+1] = len(p.rowCol)
		if ds > p.dropL1 {
			p.dropL1 = ds
		}
		if dm > p.dropInf {
			p.dropInf = dm
		}
		p.mCol, p.mVal, ds, dm = truncRow(p.mCol, p.mVal, mrow, eps)
		p.mPtr[i+1] = len(p.mCol)
		if ds > p.mextDropL1 {
			p.mextDropL1 = ds
		}
	}
	return p, nil
}

// reTruncate derives a more aggressively truncated engine from an
// existing sparse one (eps must exceed the base's). The row maxima are
// preserved by truncation (the largest entry is never dropped), so the
// thresholds match a from-scratch build; the error bounds compound the
// base's conservatively.
func reTruncate(base *Potentials, eps float64) *Potentials {
	c := base.c
	ni := len(c.islands)
	p := &Potentials{c: c, sparse: true, eps: eps, fill: base.fill,
		rowPtr: make([]int, ni+1), mPtr: make([]int, ni+1)}
	trunc := func(ptr []int, cols []int32, vals []float64, i int, outCols []int32, outVals []float64) ([]int32, []float64, float64, float64) {
		lo, hi := ptr[i], ptr[i+1]
		rmax := 0.0
		for _, v := range vals[lo:hi] {
			if a := math.Abs(v); a > rmax {
				rmax = a
			}
		}
		thr := eps * rmax
		dropSum, dropMax := 0.0, 0.0
		for idx := lo; idx < hi; idx++ {
			if a := math.Abs(vals[idx]); a < thr {
				dropSum += a
				if a > dropMax {
					dropMax = a
				}
				continue
			}
			outCols = append(outCols, cols[idx])
			outVals = append(outVals, vals[idx])
		}
		return outCols, outVals, dropSum, dropMax
	}
	var newDropL1, newDropInf, newMextL1 float64
	for i := 0; i < ni; i++ {
		var ds, dm float64
		p.rowCol, p.rowVal, ds, dm = trunc(base.rowPtr, base.rowCol, base.rowVal, i, p.rowCol, p.rowVal)
		p.rowPtr[i+1] = len(p.rowCol)
		if ds > newDropL1 {
			newDropL1 = ds
		}
		if dm > newDropInf {
			newDropInf = dm
		}
		p.mCol, p.mVal, ds, dm = trunc(base.mPtr, base.mCol, base.mVal, i, p.mCol, p.mVal)
		p.mPtr[i+1] = len(p.mCol)
		if ds > newMextL1 {
			newMextL1 = ds
		}
	}
	p.dropL1 = base.dropL1 + newDropL1
	p.dropInf = math.Max(base.dropInf, newDropInf)
	p.mextDropL1 = base.mextDropL1 + newMextL1
	return p
}

// PotentialEngine returns a potential engine over this circuit with the
// requested backend, deriving and caching one when it differs from the
// engine the circuit was built with. A positive eps implies sparse.
//
// Rules: on a dense-built circuit any sparse view can be derived (the
// dense inverse is compressed and truncated). On a circuit built with
// CinvTruncation > 0 the dense inverse never existed, so only the
// built engine or a coarser re-truncation (larger eps) is available;
// asking for dense or a smaller eps is an error. Asking for exactly the
// built configuration returns the built engine itself.
func (c *Circuit) PotentialEngine(sparse bool, eps float64) (*Potentials, error) {
	if !c.built {
		return nil, errors.New("circuit: PotentialEngine before Build")
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("circuit: invalid C^-1 truncation threshold %g", eps)
	}
	if eps > 0 {
		sparse = true
	}
	if !sparse {
		if c.cinv == nil {
			return nil, fmt.Errorf("circuit: built with cinv truncation %g; the dense engine is unavailable", c.pot.eps)
		}
		if !c.pot.sparse {
			return c.pot, nil
		}
		// Built sparse-exact, dense data still present: serve a dense view.
		c.engMu.Lock()
		defer c.engMu.Unlock()
		if c.denseView == nil {
			c.denseView = newDensePotentials(c)
		}
		return c.denseView, nil
	}
	if c.pot.sparse && numeric.SameBits(c.pot.eps, eps) {
		return c.pot, nil
	}
	c.engMu.Lock()
	defer c.engMu.Unlock()
	if e, ok := c.derived[eps]; ok {
		return e, nil
	}
	var e *Potentials
	if c.cinv != nil {
		e = newSparseFromDense(c, eps)
	} else {
		if eps < c.pot.eps {
			return nil, fmt.Errorf("circuit: built with cinv truncation %g; cannot derive finer truncation %g", c.pot.eps, eps)
		}
		e = reTruncate(c.pot, eps)
	}
	if c.derived == nil {
		c.derived = map[float64]*Potentials{}
	}
	c.derived[eps] = e
	return e, nil
}

// Potentials returns the engine the circuit was built with (dense
// unless BuildWith selected the sparse backend).
func (c *Circuit) Potentials() *Potentials { return c.pot }
