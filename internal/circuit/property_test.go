package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"semsim/internal/rng"
	"semsim/internal/units"
)

// randCircuit builds a random but electrically valid circuit: a few
// externals with DC sources, islands, random junctions and capacitors,
// with every island guaranteed some capacitance.
func randCircuit(r *rng.Source) *Circuit {
	c := New()
	nExt := 2 + r.Intn(3)
	nIsl := 1 + r.Intn(5)
	var exts, isls []int
	for i := 0; i < nExt; i++ {
		id := c.AddNode("", External)
		c.SetSource(id, DC(r.Float64()*0.1-0.05))
		exts = append(exts, id)
	}
	for i := 0; i < nIsl; i++ {
		isls = append(isls, c.AddNode("", Island))
	}
	anyNode := func() int {
		all := append(append([]int(nil), exts...), isls...)
		return all[r.Intn(len(all))]
	}
	// Anchor every island with a junction to something, plus a small
	// capacitor to a fixed potential so no island cluster floats (a
	// group of islands tied only to each other has a singular
	// capacitance matrix).
	for _, isl := range isls {
		for {
			other := anyNode()
			if other != isl {
				c.AddJunction(isl, other, 0.5e6+r.Float64()*2e6, (0.5+2*r.Float64())*units.Atto)
				break
			}
		}
		c.AddCap(isl, exts[0], (0.2+r.Float64())*units.Atto)
	}
	// Extra random junctions and caps.
	for i := 0; i < r.Intn(5); i++ {
		a, b := anyNode(), anyNode()
		if a != b {
			c.AddJunction(a, b, 0.5e6+r.Float64()*2e6, (0.5+2*r.Float64())*units.Atto)
		}
	}
	for i := 0; i < r.Intn(6); i++ {
		a, b := anyNode(), anyNode()
		if a != b {
			c.AddCap(a, b, (0.5+5*r.Float64())*units.Atto)
		}
	}
	if err := c.Build(); err != nil {
		panic(err)
	}
	return c
}

// TestPotentialSuperposition: potentials are affine in the electron
// configuration, so v(n+dn) - v(n) must be independent of n.
func TestPotentialSuperposition(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := randCircuit(r)
		ni := c.NumIslands()
		n1 := make([]int, ni)
		n2 := make([]int, ni)
		dn := make([]int, ni)
		for i := 0; i < ni; i++ {
			n1[i] = r.Intn(7) - 3
			n2[i] = r.Intn(7) - 3
			dn[i] = r.Intn(3) - 1
		}
		add := func(a, b []int) []int {
			out := make([]int, len(a))
			for i := range a {
				out[i] = a[i] + b[i]
			}
			return out
		}
		vA0 := c.IslandPotentials(nil, n1, 0)
		vA1 := c.IslandPotentials(nil, add(n1, dn), 0)
		vB0 := c.IslandPotentials(nil, n2, 0)
		vB1 := c.IslandPotentials(nil, add(n2, dn), 0)
		for k := 0; k < ni; k++ {
			d1 := vA1[k] - vA0[k]
			d2 := vB1[k] - vB0[k]
			if math.Abs(d1-d2) > 1e-9*(math.Abs(d1)+math.Abs(d2)+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPotentialShiftConsistency: the incremental per-transfer shift
// must equal the difference of full recomputations, for random
// circuits and random transfers.
func TestPotentialShiftConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := randCircuit(r)
		ni := c.NumIslands()
		n := make([]int, ni)
		for i := range n {
			n[i] = r.Intn(5) - 2
		}
		j := c.Junction(r.Intn(c.NumJunctions()))
		src, dst := j.A, j.B
		if r.Intn(2) == 0 {
			src, dst = dst, src
		}
		v0 := c.IslandPotentials(nil, n, 0)
		c.ApplyTransfer(n, src, dst, 1)
		v1 := c.IslandPotentials(nil, n, 0)
		for k := 0; k < ni; k++ {
			shift := c.PotentialShift(k, src, dst, units.E)
			if math.Abs(v0[k]+shift-v1[k]) > 1e-9*(math.Abs(v1[k])+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMicroreversibility: dW(src->dst) before an event plus
// dW(dst->src) after it must vanish for any junction of any circuit.
func TestMicroreversibility(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := randCircuit(r)
		n := make([]int, c.NumIslands())
		for i := range n {
			n[i] = r.Intn(5) - 2
		}
		j := c.Junction(r.Intn(c.NumJunctions()))
		v := c.IslandPotentials(nil, n, 0)
		nv := func(id int) float64 { return c.NodePotential(id, v, 0) }
		fwd := c.DeltaWElectron(j.A, j.B, nv(j.A), nv(j.B))
		c.ApplyTransfer(n, j.A, j.B, 1)
		v = c.IslandPotentials(v, n, 0)
		bwd := c.DeltaWElectron(j.B, j.A, nv(j.B), nv(j.A))
		scale := math.Abs(fwd) + math.Abs(bwd) + 1e-25
		return math.Abs(fwd+bwd)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCapacitanceMatrixDiagonallyDominant: by construction the island
// capacitance matrix must be symmetric and diagonally dominant (hence
// SPD), for any random circuit.
func TestCapacitanceMatrixDiagonallyDominant(t *testing.T) {
	f := func(seed uint64) bool {
		c := randCircuit(rng.New(seed))
		m := c.CMatrix()
		ni := m.N()
		for i := 0; i < ni; i++ {
			off := 0.0
			for j := 0; j < ni; j++ {
				if j == i {
					continue
				}
				if m.At(i, j) != m.At(j, i) {
					return false
				}
				if m.At(i, j) > 0 {
					return false // off-diagonals are -C couplings
				}
				off += -m.At(i, j)
			}
			if m.At(i, i) < off-1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAdjacencyIsSymmetric: junction adjacency is a symmetric relation
// and never contains the junction itself.
func TestAdjacencyIsSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		c := randCircuit(rng.New(seed))
		has := func(list []int, x int) bool {
			for _, v := range list {
				if v == x {
					return true
				}
			}
			return false
		}
		for j := 0; j < c.NumJunctions(); j++ {
			for _, nb := range c.JunctionNeighbors(j) {
				if nb == j {
					return false
				}
				if !has(c.JunctionNeighbors(nb), j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
