package circuit

// SETConfig describes a single-electron transistor: one island coupled
// to source and drain leads through two tunnel junctions and to a gate
// through a capacitor (Fig. 1a of the paper).
type SETConfig struct {
	R1, C1 float64 // source junction
	R2, C2 float64 // drain junction
	Cg     float64 // gate capacitance
	// Cg2 optionally adds a second gate (used by the nSET/pSET logic
	// family, which biases the second gate to shift the I-V curve).
	Cg2 float64
	// Vs, Vd, Vg are the DC source, drain and gate voltages. For a
	// symmetric bias use Vs = +V/2, Vd = -V/2.
	Vs, Vd, Vg float64
	// Vg2 is the second-gate bias (only used when Cg2 > 0).
	Vg2 float64
	// Qb is the island background charge in coulombs.
	Qb float64
	// Super, if non-zero, marks the whole circuit superconducting.
	Super SuperParams
}

// SETNodes reports the node and junction ids of a freshly built SET.
type SETNodes struct {
	Source, Drain, Gate, Gate2, Island int
	JuncSource, JuncDrain              int
}

// NewSET constructs and builds a standalone SET circuit. It panics on
// invalid parameters (zero R or C) and returns the built circuit with
// its node map.
func NewSET(cfg SETConfig) (*Circuit, SETNodes) {
	c := New()
	var nd SETNodes
	nd.Source = c.AddNode("source", External)
	nd.Drain = c.AddNode("drain", External)
	nd.Gate = c.AddNode("gate", External)
	nd.Island = c.AddNode("island", Island)
	c.SetSource(nd.Source, DC(cfg.Vs))
	c.SetSource(nd.Drain, DC(cfg.Vd))
	c.SetSource(nd.Gate, DC(cfg.Vg))
	nd.JuncSource = c.AddJunction(nd.Source, nd.Island, cfg.R1, cfg.C1)
	nd.JuncDrain = c.AddJunction(nd.Island, nd.Drain, cfg.R2, cfg.C2)
	c.AddCap(nd.Gate, nd.Island, cfg.Cg)
	if cfg.Cg2 > 0 {
		nd.Gate2 = c.AddNode("gate2", External)
		c.SetSource(nd.Gate2, DC(cfg.Vg2))
		c.AddCap(nd.Gate2, nd.Island, cfg.Cg2)
	} else {
		nd.Gate2 = -1
	}
	if cfg.Qb != 0 {
		c.SetBackgroundCharge(nd.Island, cfg.Qb)
	}
	if cfg.Super.Superconducting() {
		c.SetSuper(cfg.Super)
	}
	if err := c.Build(); err != nil {
		panic("circuit: NewSET build failed: " + err.Error())
	}
	return c, nd
}
