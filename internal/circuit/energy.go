package circuit

import "semsim/internal/units"

// DeltaW returns the change in free energy (joules) for a carrier of
// charge -q (q > 0: q = e for electrons and quasi-particles, q = 2e for
// Cooper pairs) to tunnel from node src to node dst, given the node
// potentials before the event. This is Eq. 2 of the paper generalized
// to arbitrary carrier charge:
//
//	dW = -q (v_dst - v_src) + (Cinv_ss - 2 Cinv_sd + Cinv_dd) q^2 / 2
//
// Cinv entries involving external nodes are zero, which folds the
// island/lead special cases of the orthodox theory into one formula.
func (c *Circuit) DeltaW(src, dst int, q, vSrc, vDst float64) float64 {
	return c.pot.DeltaW(src, dst, q, vSrc, vDst)
}

// DeltaWElectron is DeltaW for a single electron.
func (c *Circuit) DeltaWElectron(src, dst int, vSrc, vDst float64) float64 {
	return c.DeltaW(src, dst, units.E, vSrc, vDst)
}

// PotentialShift returns the change of island potential at matrix row k
// caused by moving m carriers of charge -q from node src to node dst
// (island charge at src rises by +m*q, at dst falls by -m*q):
//
//	dv_k = m*q * (Cinv_k,src - Cinv_k,dst)
//
// src/dst are node ids; external endpoints contribute nothing.
func (c *Circuit) PotentialShift(k int, src, dst int, mq float64) float64 {
	return c.pot.PotentialShift(k, src, dst, mq)
}

// ApplyTransfer updates the electron-count vector n (island order) for
// m electrons moving from node src to node dst. External endpoints are
// charge reservoirs and are not tracked.
func (c *Circuit) ApplyTransfer(n []int, src, dst, m int) {
	if i := c.islandIdx[src]; i >= 0 {
		n[i] -= m
	}
	if i := c.islandIdx[dst]; i >= 0 {
		n[i] += m
	}
}
