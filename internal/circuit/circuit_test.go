package circuit

import (
	"math"
	"testing"

	"semsim/internal/units"
)

const (
	aF = units.Atto
	e  = units.E
)

func almost(t *testing.T, name string, got, want, rel float64) {
	t.Helper()
	den := math.Abs(want)
	if den == 0 {
		den = 1
	}
	if math.Abs(got-want)/den > rel {
		t.Fatalf("%s: got %.12g want %.12g", name, got, want)
	}
}

func paperSET(vs, vd, vg float64) (*Circuit, SETNodes) {
	return NewSET(SETConfig{
		R1: 1e6, C1: 1 * aF,
		R2: 1e6, C2: 1 * aF,
		Cg: 3 * aF,
		Vs: vs, Vd: vd, Vg: vg,
	})
}

func TestSETCapacitanceMatrix(t *testing.T) {
	c, nd := paperSET(0.01, -0.01, 0)
	if c.NumIslands() != 1 {
		t.Fatalf("SET should have 1 island, got %d", c.NumIslands())
	}
	csum := c.SumCapacitance(nd.Island)
	almost(t, "Csigma", csum, 5*aF, 1e-12)
	almost(t, "Cinv", c.Cinv(nd.Island, nd.Island), 1/(5*aF), 1e-12)
	// External entries must vanish.
	if c.Cinv(nd.Source, nd.Island) != 0 || c.Cinv(nd.Source, nd.Source) != 0 {
		t.Fatal("Cinv involving externals must be zero")
	}
}

func TestSETIslandPotential(t *testing.T) {
	vs, vd, vg := 0.02, -0.02, 0.015
	c, _ := paperSET(vs, vd, vg)
	for _, n0 := range []int{-2, 0, 1, 5} {
		v := c.IslandPotentials(nil, []int{n0}, 0)
		// v = (Qb - n e + C1 Vs + C2 Vd + Cg Vg)/Csum
		want := (-float64(n0)*e + aF*vs + aF*vd + 3*aF*vg) / (5 * aF)
		almost(t, "island potential", v[0], want, 1e-10)
	}
}

func TestDeltaWChargingEnergyAtZeroBias(t *testing.T) {
	c, nd := paperSET(0, 0, 0)
	v := c.IslandPotentials(nil, []int{0}, 0)
	vIsl := v[0]
	// Tunneling an electron onto a neutral island at zero bias costs
	// exactly the charging energy e^2/(2 Csigma).
	dw := c.DeltaWElectron(nd.Source, nd.Island, 0, vIsl)
	almost(t, "dW = Ec", dw, units.ChargingEnergy(5*aF), 1e-10)
	// And the reverse (island -> lead) with one excess electron is also
	// +Ec after the potential update; with zero electrons it is +Ec too
	// by symmetry of the neutral state.
	dwOff := c.DeltaWElectron(nd.Island, nd.Drain, vIsl, 0)
	almost(t, "dW off = Ec", dwOff, units.ChargingEnergy(5*aF), 1e-10)
}

func TestDeltaWGatePeriodicity(t *testing.T) {
	// Shifting Vg by exactly e/Cg and the electron number by 1 must give
	// identical tunneling energetics (the Coulomb oscillation period).
	period := units.GatePeriod(3 * aF)
	c1, nd1 := paperSET(0.002, -0.002, 0)
	c2, nd2 := paperSET(0.002, -0.002, period)
	v1 := c1.IslandPotentials(nil, []int{0}, 0)
	v2 := c2.IslandPotentials(nil, []int{1}, 0)
	dw1 := c1.DeltaWElectron(nd1.Source, nd1.Island, c1.SourceVoltage(nd1.Source, 0), v1[0])
	dw2 := c2.DeltaWElectron(nd2.Source, nd2.Island, c2.SourceVoltage(nd2.Source, 0), v2[0])
	almost(t, "gate periodicity", dw2, dw1, 1e-9)
}

func TestDeltaWDetailedBalanceStructure(t *testing.T) {
	// dW(src->dst) evaluated before the event, plus dW(dst->src)
	// evaluated after the event, must sum to zero (microreversibility).
	c, nd := paperSET(0.005, -0.005, 0.003)
	n := []int{0}
	v := c.IslandPotentials(nil, n, 0)
	fwd := c.DeltaWElectron(nd.Source, nd.Island, c.SourceVoltage(nd.Source, 0), v[0])
	c.ApplyTransfer(n, nd.Source, nd.Island, 1)
	v = c.IslandPotentials(v, n, 0)
	bwd := c.DeltaWElectron(nd.Island, nd.Source, v[0], c.SourceVoltage(nd.Source, 0))
	if math.Abs(fwd+bwd) > 1e-30 {
		t.Fatalf("microreversibility violated: fwd %g + bwd %g = %g", fwd, bwd, fwd+bwd)
	}
}

func TestPotentialShiftMatchesRecompute(t *testing.T) {
	// Build a two-island chain: lead - J - isl0 - J - isl1 - J - lead,
	// with a cross capacitor, and verify incremental potential updates
	// match full recomputation after a tunneling event.
	c := New()
	l0 := c.AddNode("l0", External)
	l1 := c.AddNode("l1", External)
	g := c.AddNode("g", External)
	i0 := c.AddNode("i0", Island)
	i1 := c.AddNode("i1", Island)
	c.SetSource(l0, DC(0.01))
	c.SetSource(l1, DC(-0.01))
	c.SetSource(g, DC(0.004))
	c.AddJunction(l0, i0, 1e6, 1*aF)
	c.AddJunction(i0, i1, 2e6, 1.5*aF)
	c.AddJunction(i1, l1, 1e6, 0.8*aF)
	c.AddCap(g, i0, 2*aF)
	c.AddCap(i0, i1, 0.5*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	n := []int{0, 0}
	v0 := c.IslandPotentials(nil, n, 0)
	// Electron hops i0 -> i1.
	var shift [2]float64
	for k := 0; k < 2; k++ {
		shift[k] = c.PotentialShift(k, i0, i1, e)
	}
	c.ApplyTransfer(n, i0, i1, 1)
	v1 := c.IslandPotentials(nil, n, 0)
	for k := 0; k < 2; k++ {
		almost(t, "incremental potential", v0[k]+shift[k], v1[k], 1e-9)
	}
}

func TestExternalDelta(t *testing.T) {
	c, _ := paperSET(0.01, -0.01, 0)
	n := []int{0}
	vA := c.IslandPotentials(nil, n, 0)
	// Manually evaluate what the island potential would be with a
	// different gate voltage using ExternalDelta.
	vext0 := c.ExternalVoltages(nil, 0)
	vext1 := append([]float64(nil), vext0...)
	// Gate is the third external added (order: source, drain, gate).
	vext1[2] += 0.005
	d := make([]float64, 1)
	c.ExternalDelta(d, vext0, vext1)
	c2, _ := paperSET(0.01, -0.01, 0.005)
	vB := c2.IslandPotentials(nil, n, 0)
	almost(t, "external delta", vA[0]+d[0], vB[0], 1e-10)
}

func TestTwoIslandCinvAgainstHandComputation(t *testing.T) {
	// islands i0, i1: i0 grounded via 2 aF, i1 grounded via 1 aF,
	// mutual 1 aF. C = [[3, -1], [-1, 2]] aF; det = 5 aF^2;
	// Cinv = 1/(5 aF) * [[2, 1], [1, 3]].
	c := New()
	gnd := c.AddNode("gnd", External)
	c.SetSource(gnd, DC(0))
	i0 := c.AddNode("i0", Island)
	i1 := c.AddNode("i1", Island)
	c.AddJunction(gnd, i0, 1e6, 2*aF)
	c.AddJunction(gnd, i1, 1e6, 1*aF)
	c.AddCap(i0, i1, 1*aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	almost(t, "Cinv00", c.Cinv(i0, i0), 2/(5*aF), 1e-12)
	almost(t, "Cinv01", c.Cinv(i0, i1), 1/(5*aF), 1e-12)
	almost(t, "Cinv11", c.Cinv(i1, i1), 3/(5*aF), 1e-12)
}

func TestBackgroundChargeShiftsPotential(t *testing.T) {
	cfg := SETConfig{R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF}
	c0, _ := NewSET(cfg)
	cfg.Qb = 0.65 * e
	cQ, _ := NewSET(cfg)
	v0 := c0.IslandPotentials(nil, []int{0}, 0)
	vQ := cQ.IslandPotentials(nil, []int{0}, 0)
	almost(t, "Qb potential shift", vQ[0]-v0[0], 0.65*e/(5*aF), 1e-10)
}

func TestAdjacency(t *testing.T) {
	// Chain of three junctions: J0 and J1 share island i0; J1 and J2
	// share island i1; a capacitor links i1 to i2 where J3 sits.
	c := New()
	lead := c.AddNode("lead", External)
	c.SetSource(lead, DC(0))
	i0 := c.AddNode("i0", Island)
	i1 := c.AddNode("i1", Island)
	i2 := c.AddNode("i2", Island)
	lead2 := c.AddNode("lead2", External)
	c.SetSource(lead2, DC(0))
	j0 := c.AddJunction(lead, i0, 1e6, aF)
	j1 := c.AddJunction(i0, i1, 1e6, aF)
	j2 := c.AddJunction(i1, lead2, 1e6, aF)
	c.AddCap(i1, i2, aF)
	j3 := c.AddJunction(i2, lead2, 1e6, aF)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	has := func(list []int, want int) bool {
		for _, v := range list {
			if v == want {
				return true
			}
		}
		return false
	}
	if !has(c.JunctionNeighbors(j0), j1) {
		t.Fatal("j0 should neighbour j1 (shared island)")
	}
	if has(c.JunctionNeighbors(j0), j2) {
		t.Fatal("j0 should not directly neighbour j2")
	}
	if !has(c.JunctionNeighbors(j1), j3) {
		t.Fatal("j1 should neighbour j3 through the capacitor at i1-i2")
	}
	if !has(c.JunctionNeighbors(j2), j3) {
		t.Fatal("j2 should neighbour j3 (shared lead2 and cap)")
	}
	if js := c.JunctionsAt(i1); len(js) != 2 {
		t.Fatalf("JunctionsAt(i1) = %v, want 2 junctions", js)
	}
}

func TestBuildErrors(t *testing.T) {
	// External without source.
	c := New()
	c.AddNode("lead", External)
	i := c.AddNode("i", Island)
	_ = i
	if err := c.Build(); err == nil {
		t.Fatal("build accepted external without source")
	}
	// No islands.
	c2 := New()
	a := c2.AddNode("a", External)
	c2.SetSource(a, DC(0))
	if err := c2.Build(); err == nil {
		t.Fatal("build accepted circuit without islands")
	}
	// Island with no capacitance at all -> singular matrix.
	c3 := New()
	g := c3.AddNode("g", External)
	c3.SetSource(g, DC(0))
	c3.AddNode("floating", Island)
	i2 := c3.AddNode("ok", Island)
	c3.AddJunction(g, i2, 1e6, aF)
	if err := c3.Build(); err == nil {
		t.Fatal("build accepted island with no capacitance")
	}
	// Double build.
	c4, _ := paperSET(0, 0, 0)
	if err := c4.Build(); err == nil {
		t.Fatal("second Build did not error")
	}
}

func TestConstructionPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	c := New()
	a := c.AddNode("a", External)
	b := c.AddNode("b", Island)
	expectPanic("self junction", func() { c.AddJunction(a, a, 1e6, aF) })
	expectPanic("zero R", func() { c.AddJunction(a, b, 0, aF) })
	expectPanic("zero C", func() { c.AddJunction(a, b, 1e6, 0) })
	expectPanic("zero cap", func() { c.AddCap(a, b, 0) })
	expectPanic("bad node", func() { c.AddJunction(a, 99, 1e6, aF) })
	expectPanic("source on island", func() { c.SetSource(b, DC(0)) })
	expectPanic("bg charge on external", func() { c.SetBackgroundCharge(a, e) })
}

func TestSources(t *testing.T) {
	if v := (DC(0.5)).V(123); v != 0.5 {
		t.Fatalf("DC: %g", v)
	}
	if !(DC(0.5)).Static() {
		t.Fatal("DC must be static")
	}
	s := Sine{Offset: 1, Amp: 2, Freq: 1}
	almost(t, "sine t=0", s.V(0), 1, 1e-12)
	almost(t, "sine quarter", s.V(0.25), 3, 1e-9)
	if s.Static() {
		t.Fatal("sine with amplitude is not static")
	}
	if !(Sine{Offset: 1}).Static() {
		t.Fatal("zero-amplitude sine is static")
	}
	p := PWL{T: []float64{0, 1e-9, 2e-9}, Volt: []float64{0, 1, 1}}
	almost(t, "pwl before", p.V(-1), 0, 1e-12)
	almost(t, "pwl mid", p.V(0.5e-9), 0.5, 1e-12)
	almost(t, "pwl after", p.V(5e-9), 1, 1e-12)
	if p.Static() {
		t.Fatal("stepping PWL is not static")
	}
	if !(PWL{T: []float64{0, 1}, Volt: []float64{2, 2}}).Static() {
		t.Fatal("flat PWL is static")
	}
}

func TestAllSourcesStatic(t *testing.T) {
	c, _ := paperSET(0.01, -0.01, 0)
	if !c.AllSourcesStatic() {
		t.Fatal("DC-only SET should be static")
	}
	c2 := New()
	lead := c2.AddNode("in", External)
	c2.SetSource(lead, PWL{T: []float64{0, 1e-9}, Volt: []float64{0, 0.1}})
	isl := c2.AddNode("i", Island)
	c2.AddJunction(lead, isl, 1e6, aF)
	gnd := c2.AddNode("gnd", External)
	c2.SetSource(gnd, DC(0))
	c2.AddCap(isl, gnd, aF)
	if err := c2.Build(); err != nil {
		t.Fatal(err)
	}
	if c2.AllSourcesStatic() {
		t.Fatal("PWL-driven circuit reported static")
	}
}

func TestCooperPairDeltaW(t *testing.T) {
	// A Cooper pair (charge 2e) at zero bias costs 4x the single
	// electron charging energy: (2e)^2/2C = 4 e^2/2C.
	c, nd := paperSET(0, 0, 0)
	v := c.IslandPotentials(nil, []int{0}, 0)
	dw1 := c.DeltaW(nd.Source, nd.Island, e, 0, v[0])
	dw2 := c.DeltaW(nd.Source, nd.Island, 2*e, 0, v[0])
	almost(t, "pair charging", dw2, 4*dw1, 1e-10)
}

func TestNodePotential(t *testing.T) {
	c, nd := paperSET(0.02, -0.02, 0.01)
	v := c.IslandPotentials(nil, []int{0}, 0)
	if got := c.NodePotential(nd.Source, v, 0); got != 0.02 {
		t.Fatalf("source potential: %g", got)
	}
	if got := c.NodePotential(nd.Island, v, 0); got != v[0] {
		t.Fatalf("island potential passthrough: %g vs %g", got, v[0])
	}
}
