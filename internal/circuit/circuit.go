// Package circuit models a single-electron device circuit: islands and
// external leads connected by tunnel junctions and capacitors, with DC
// and time-dependent voltage sources and per-island background charges.
//
// After Build, the circuit is immutable and exposes exactly the
// quantities the orthodox theory needs (paper Eq. 2):
//
//   - the inverse island capacitance matrix C^-1 (Cinv),
//   - island potentials v = C^-1 (q_e + C_IE * v_ext) for a given
//     electron configuration and time,
//   - topological adjacency used by the adaptive solver's
//     breadth-first spill.
//
// Solver state (electron counts, cached potentials) lives in the
// solver; the circuit itself is shared and read-only during simulation.
package circuit

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"semsim/internal/matrix"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// NodeKind classifies circuit nodes.
type NodeKind int

const (
	// Island is a floating conductor whose excess electron count is a
	// dynamic variable.
	Island NodeKind = iota
	// External is a lead held at a source-defined potential (including
	// ground, an External at 0 V).
	External
)

func (k NodeKind) String() string {
	switch k {
	case Island:
		return "island"
	case External:
		return "external"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Source supplies the voltage of an external node as a function of time.
type Source interface {
	V(t float64) float64
	// Static reports whether the source is constant in time. Circuits
	// whose sources are all static never need input-driven rate
	// recalculation.
	Static() bool
}

// DC is a constant voltage source.
type DC float64

// V returns the constant voltage.
func (d DC) V(float64) float64 { return float64(d) }

// Static always reports true.
func (d DC) Static() bool { return true }

// Sine is a sinusoidal source v(t) = Offset + Amp*sin(2*pi*Freq*t + Phase).
type Sine struct {
	Offset, Amp, Freq, Phase float64
}

// V returns the source voltage at time t.
func (s Sine) V(t float64) float64 {
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// Static reports whether the amplitude is zero.
func (s Sine) Static() bool { return s.Amp == 0 }

// PWL is a piecewise-linear source defined by (time, voltage) breakpoints
// with constant extrapolation outside the range. Breakpoint times must be
// strictly increasing.
type PWL struct {
	T, Volt []float64
}

// V returns the linearly interpolated voltage at time t.
func (p PWL) V(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.Volt[0]
	}
	if t >= p.T[n-1] {
		return p.Volt[n-1]
	}
	// Linear scan: PWL sources have a handful of breakpoints.
	for i := 1; i < n; i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.Volt[i-1] + f*(p.Volt[i]-p.Volt[i-1])
		}
	}
	return p.Volt[n-1]
}

// RampStep returns a time-step subdivision for the Monte Carlo solver
// while t lies inside a segment whose voltage is actively changing
// (1/16 of the segment length), or 0 when the local voltage is flat.
// This keeps tunnel rates approximately constant across each MC step.
func (p PWL) RampStep(t float64) float64 {
	for i := 1; i < len(p.T); i++ {
		if t >= p.T[i-1] && t < p.T[i] {
			if !numeric.SameBits(p.Volt[i], p.Volt[i-1]) {
				return (p.T[i] - p.T[i-1]) / 16
			}
			return 0
		}
	}
	return 0
}

// Static reports whether all breakpoint voltages are equal.
func (p PWL) Static() bool {
	for _, v := range p.Volt[1:] {
		if !numeric.SameBits(v, p.Volt[0]) {
			return false
		}
	}
	return true
}

// Junction is a tunnel junction between nodes A and B with tunnel
// resistance R (ohms) and capacitance C (farads).
type Junction struct {
	A, B int
	R, C float64
}

// Capacitor is an ideal (non-tunneling) capacitance between two nodes.
type Capacitor struct {
	A, B int
	C    float64
}

// Circuit is a single-electron circuit under construction or, after
// Build, a frozen description ready for simulation.
type Circuit struct {
	names     []string
	kinds     []NodeKind
	sources   []Source  // indexed by node; nil for islands
	bgCharge  []float64 // coulombs, indexed by node (meaningful for islands)
	junctions []Junction
	caps      []Capacitor

	// Superconducting parameters; zero GapAt0 means normal state.
	super SuperParams

	built bool

	// Everything below is populated by Build.
	islands    []int       // node ids of islands, in matrix order
	islandIdx  []int       // node id -> island row, -1 for externals
	externals  []int       // node ids of externals
	extIdx     []int       // node id -> external column, -1 for islands
	ccsr       *matrix.CSR // assembled C in CSR form (always)
	csigma     []float64   // diagonal of C: per-island total capacitance
	cmat       *matrix.Sym // dense C; nil when built with CinvTruncation > 0
	cinv       *matrix.Sym // dense C^-1; nil when built with CinvTruncation > 0
	cie        [][]float64 // islands x externals coupling capacitances
	mext       [][]float64 // Cinv * CIE: islands x externals; nil when cinv is
	pot        *Potentials // build-time potential engine
	nodeJuncs  [][]int     // node id -> junction ids touching it
	juncNbrs   [][]int     // junction id -> neighbouring junction ids
	hasDynamic bool
	allStatic  bool

	// Derived potential engines (see PotentialEngine), cached per eps.
	engMu     sync.Mutex
	denseView *Potentials
	derived   map[float64]*Potentials
}

// SuperParams describes the superconducting state of a circuit in which
// every electrode is the same superconductor (the paper's supported
// configuration: "circuits can contain superconducting or
// non-superconducting elements, but not both").
type SuperParams struct {
	// GapAt0 is the zero-temperature gap Delta(0) in joules. Zero means
	// the circuit is in the normal state.
	GapAt0 float64
	// Tc is the critical temperature in kelvin.
	Tc float64
}

// Superconducting reports whether the parameters describe a
// superconducting circuit.
func (p SuperParams) Superconducting() bool { return p.GapAt0 > 0 }

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

// AddNode adds a node and returns its id. Ids are dense from 0.
func (c *Circuit) AddNode(name string, kind NodeKind) int {
	c.mustBeMutable()
	id := len(c.names)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	c.names = append(c.names, name)
	c.kinds = append(c.kinds, kind)
	c.sources = append(c.sources, nil)
	c.bgCharge = append(c.bgCharge, 0)
	return id
}

// AddJunction adds a tunnel junction and returns its id.
func (c *Circuit) AddJunction(a, b int, r, cap float64) int {
	c.mustBeMutable()
	c.checkNode(a)
	c.checkNode(b)
	if a == b {
		panic("circuit: junction endpoints identical")
	}
	if r <= 0 || cap <= 0 {
		panic(fmt.Sprintf("circuit: junction needs positive R and C, got R=%g C=%g", r, cap))
	}
	c.junctions = append(c.junctions, Junction{A: a, B: b, R: r, C: cap})
	return len(c.junctions) - 1
}

// AddCap adds an ideal capacitor.
func (c *Circuit) AddCap(a, b int, cap float64) {
	c.mustBeMutable()
	c.checkNode(a)
	c.checkNode(b)
	if a == b {
		panic("circuit: capacitor endpoints identical")
	}
	if cap <= 0 {
		panic(fmt.Sprintf("circuit: capacitor needs positive C, got %g", cap))
	}
	c.caps = append(c.caps, Capacitor{A: a, B: b, C: cap})
}

// SetSource attaches a voltage source to an external node.
func (c *Circuit) SetSource(node int, s Source) {
	c.mustBeMutable()
	c.checkNode(node)
	if c.kinds[node] != External {
		panic(fmt.Sprintf("circuit: SetSource on non-external node %d", node))
	}
	c.sources[node] = s
}

// SetBackgroundCharge sets the fixed background (offset) charge of an
// island in coulombs. The paper's Fig. 5 experiment uses Qb = 0.65 e.
func (c *Circuit) SetBackgroundCharge(node int, q float64) {
	c.mustBeMutable()
	c.checkNode(node)
	if c.kinds[node] != Island {
		panic(fmt.Sprintf("circuit: background charge on non-island node %d", node))
	}
	c.bgCharge[node] = q
}

// SetSuper marks the circuit as superconducting with the given
// zero-temperature gap (joules) and critical temperature (kelvin).
func (c *Circuit) SetSuper(p SuperParams) {
	c.mustBeMutable()
	c.super = p
}

// Super returns the superconducting parameters.
func (c *Circuit) Super() SuperParams { return c.super }

func (c *Circuit) mustBeMutable() {
	if c.built {
		panic("circuit: modification after Build")
	}
}

func (c *Circuit) checkNode(id int) {
	if id < 0 || id >= len(c.names) {
		panic(fmt.Sprintf("circuit: node %d out of range [0,%d)", id, len(c.names)))
	}
}

// ErrNoIslands is returned by Build when a circuit has no islands:
// there is nothing for a single-electron simulator to do.
var ErrNoIslands = errors.New("circuit: no islands")

// Build freezes the circuit with the default dense potential engine:
// assembles and inverts the island capacitance matrix and precomputes
// adjacency. It returns an error if the circuit is electrically
// ill-posed (an island with no capacitance, an external without a
// source, no islands at all).
func (c *Circuit) Build() error { return c.BuildWith(BuildOptions{}) }

// BuildWith freezes the circuit like Build but lets the caller select
// the potential backend (see BuildOptions). With CinvTruncation > 0 the
// dense inverse is never formed, so circuits far beyond the dense
// memory ceiling become buildable.
func (c *Circuit) BuildWith(bo BuildOptions) error {
	if c.built {
		return errors.New("circuit: Build called twice")
	}
	if bo.CinvTruncation < 0 || math.IsNaN(bo.CinvTruncation) {
		return fmt.Errorf("circuit: invalid C^-1 truncation threshold %g", bo.CinvTruncation)
	}
	n := len(c.names)
	c.islandIdx = make([]int, n)
	c.extIdx = make([]int, n)
	for i := range c.islandIdx {
		c.islandIdx[i] = -1
		c.extIdx[i] = -1
	}
	for id, k := range c.kinds {
		switch k {
		case Island:
			c.islandIdx[id] = len(c.islands)
			c.islands = append(c.islands, id)
		case External:
			if c.sources[id] == nil {
				return fmt.Errorf("circuit: external node %d (%s) has no source", id, c.names[id])
			}
			c.extIdx[id] = len(c.externals)
			c.externals = append(c.externals, id)
		}
	}
	if len(c.islands) == 0 {
		return ErrNoIslands
	}

	ni, ne := len(c.islands), len(c.externals)
	c.cie = make([][]float64, ni)
	for i := range c.cie {
		c.cie[i] = make([]float64, ne)
	}
	// Assemble C as triplets (junctions first, then capacitors, matching
	// the historical dense accumulation order: CSRFromTriplets sums
	// duplicates in input order, so every matrix entry is the same float
	// the AddSym loop used to produce).
	ts := make([]matrix.Triplet, 0, 4*(len(c.junctions)+len(c.caps)))
	addCap := func(a, b int, cap float64) {
		ia, ib := c.islandIdx[a], c.islandIdx[b]
		if ia >= 0 {
			ts = append(ts, matrix.Triplet{I: ia, J: ia, V: cap})
		}
		if ib >= 0 {
			ts = append(ts, matrix.Triplet{I: ib, J: ib, V: cap})
		}
		switch {
		case ia >= 0 && ib >= 0:
			ts = append(ts, matrix.Triplet{I: ia, J: ib, V: -cap},
				matrix.Triplet{I: ib, J: ia, V: -cap})
		case ia >= 0:
			c.cie[ia][c.extIdx[b]] += cap
		case ib >= 0:
			c.cie[ib][c.extIdx[a]] += cap
		}
	}
	for _, j := range c.junctions {
		addCap(j.A, j.B, j.C)
	}
	for _, cp := range c.caps {
		addCap(cp.A, cp.B, cp.C)
	}
	c.ccsr = matrix.CSRFromTriplets(ni, ni, ts)
	c.csigma = make([]float64, ni)
	for i := range c.csigma {
		c.csigma[i] = c.ccsr.At(i, i)
	}

	if bo.SparsePotentials && bo.CinvTruncation > 0 {
		// Native sparse build: factor C sparsely, never form the dense
		// inverse.
		pot, err := newSparseNative(c, bo.CinvTruncation)
		if err != nil {
			return fmt.Errorf("circuit: capacitance matrix is singular (floating island with no capacitance?): %w", err)
		}
		c.pot = pot
	} else {
		c.cmat = matrix.NewSym(ni)
		for i := 0; i < ni; i++ {
			cols, vals := c.ccsr.Row(i)
			for k, col := range cols {
				c.cmat.SetSym(i, int(col), vals[k])
			}
		}
		inv, err := matrix.InvertSPD(c.cmat)
		if err != nil {
			return fmt.Errorf("circuit: capacitance matrix is singular (floating island with no capacitance?): %w", err)
		}
		c.cinv = inv

		// The island charge balance is q_e = C_II*v_I - C_IE*v_E (the C_IE
		// column holds the positive coupling capacitances), so
		// v_I = Cinv*q_e + (Cinv*C_IE)*v_E. Precompute mext = Cinv*C_IE.
		c.mext = make([][]float64, ni)
		for i := 0; i < ni; i++ {
			c.mext[i] = make([]float64, ne)
			row := c.cinv.Row(i)
			for s := 0; s < ne; s++ {
				acc := 0.0
				for k := 0; k < ni; k++ {
					acc += row[k] * c.cie[k][s]
				}
				c.mext[i][s] = acc
			}
		}
		if bo.SparsePotentials {
			c.pot = newSparseFromDense(c, 0)
		} else {
			c.pot = newDensePotentials(c)
		}
	}

	c.buildAdjacency()

	c.allStatic = true
	for _, id := range c.externals {
		if !c.sources[id].Static() {
			c.allStatic = false
			break
		}
	}
	c.built = true
	return nil
}

// buildAdjacency computes, for the adaptive solver, which junctions
// touch each node and which junctions neighbour each junction. Two
// junctions are neighbours when they share an *island* or their islands
// are bridged by a single capacitor — the "junctions nearest to the
// tunneling event" of Algorithm 1. External nodes do not mediate
// adjacency: a voltage source pins its potential, so junctions that
// share only a supply rail are electrostatically independent (the
// corresponding C^-1 entries are exactly zero) — and rails fan out to
// thousands of junctions in logic circuits.
func (c *Circuit) buildAdjacency() {
	n := len(c.names)
	c.nodeJuncs = make([][]int, n)
	for jid, j := range c.junctions {
		c.nodeJuncs[j.A] = append(c.nodeJuncs[j.A], jid)
		c.nodeJuncs[j.B] = append(c.nodeJuncs[j.B], jid)
	}
	// Island adjacency through capacitors (junction capacitance already
	// links junctions through shared islands).
	capNbr := make([][]int, n)
	for _, cp := range c.caps {
		if c.islandIdx[cp.A] >= 0 && c.islandIdx[cp.B] >= 0 {
			capNbr[cp.A] = append(capNbr[cp.A], cp.B)
			capNbr[cp.B] = append(capNbr[cp.B], cp.A)
		}
	}
	c.juncNbrs = make([][]int, len(c.junctions))
	seen := make([]int, len(c.junctions))
	for i := range seen {
		seen[i] = -1
	}
	for jid, j := range c.junctions {
		var nbrs []int
		visit := func(node int) {
			if c.islandIdx[node] < 0 {
				return
			}
			for _, other := range c.nodeJuncs[node] {
				if other != jid && seen[other] != jid {
					seen[other] = jid
					nbrs = append(nbrs, other)
				}
			}
		}
		for _, node := range [2]int{j.A, j.B} {
			visit(node)
			if c.islandIdx[node] < 0 {
				continue
			}
			for _, across := range capNbr[node] {
				visit(across)
			}
		}
		c.juncNbrs[jid] = nbrs
	}
}

// --- Accessors (valid after Build) ---

// NumNodes returns the total node count.
func (c *Circuit) NumNodes() int { return len(c.names) }

// NumIslands returns the island count (the capacitance matrix dimension).
func (c *Circuit) NumIslands() int { return len(c.islands) }

// NumJunctions returns the tunnel junction count.
func (c *Circuit) NumJunctions() int { return len(c.junctions) }

// Junction returns junction jid.
func (c *Circuit) Junction(jid int) Junction { return c.junctions[jid] }

// Junctions returns the junction list (read-only).
func (c *Circuit) Junctions() []Junction { return c.junctions }

// AllCapacitors returns the ideal (non-junction) capacitors (read-only).
func (c *Circuit) AllCapacitors() []Capacitor { return c.caps }

// NodeName returns the name of node id.
func (c *Circuit) NodeName(id int) string { return c.names[id] }

// NodeKindOf returns the kind of node id.
func (c *Circuit) NodeKindOf(id int) NodeKind { return c.kinds[id] }

// Islands returns the island node ids in matrix order.
func (c *Circuit) Islands() []int { return c.islands }

// IslandIndex maps a node id to its capacitance-matrix row, or -1.
func (c *Circuit) IslandIndex(id int) int { return c.islandIdx[id] }

// Externals returns external node ids.
func (c *Circuit) Externals() []int { return c.externals }

// BackgroundCharge returns the background charge (coulombs) of a node.
func (c *Circuit) BackgroundCharge(id int) float64 { return c.bgCharge[id] }

// AllSourcesStatic reports whether no source varies with time.
func (c *Circuit) AllSourcesStatic() bool { return c.allStatic }

// SourceVoltage returns the voltage of external node id at time t.
func (c *Circuit) SourceVoltage(id int, t float64) float64 {
	return c.sources[id].V(t)
}

// SourceOf returns the source attached to external node id (nil for
// islands). The solver inspects source types to schedule input-change
// handling.
func (c *Circuit) SourceOf(id int) Source { return c.sources[id] }

// Cinv returns the (i, j) element of the inverse capacitance matrix by
// node id; entries involving external nodes are zero (a voltage source
// absorbs charge with no potential change), which is exactly the
// convention Eq. 2 needs. The value comes from the circuit's built
// potential engine, so it reflects any configured truncation.
func (c *Circuit) Cinv(a, b int) float64 { return c.pot.Cinv(a, b) }

// CinvRow returns row i (island order) of the dense C^-1 for fast bulk
// updates. It requires the dense inverse and panics on circuits built
// with CinvTruncation > 0; hot paths should walk the potential engine's
// truncated rows instead (Potentials.Shift and friends).
func (c *Circuit) CinvRow(islandRow int) []float64 {
	if c.cinv == nil {
		panic("circuit: CinvRow needs the dense inverse (circuit built with cinv truncation)")
	}
	return c.cinv.Row(islandRow)
}

// CSR returns the assembled island capacitance matrix in CSR form
// (read-only), mainly for tests and diagnostics.
func (c *Circuit) CSR() *matrix.CSR { return c.ccsr }

// CMatrix returns the dense assembled island capacitance matrix
// (read-only), mainly for tests and diagnostics; nil on circuits built
// with CinvTruncation > 0 (use CSR instead).
func (c *Circuit) CMatrix() *matrix.Sym { return c.cmat }

// SumCapacitance returns the total capacitance C_sigma attached to an
// island — the diagonal of the capacitance matrix — which sets the
// charging energy e^2/(2 C_sigma).
func (c *Circuit) SumCapacitance(node int) float64 {
	i := c.islandIdx[node]
	if i < 0 {
		panic(fmt.Sprintf("circuit: SumCapacitance of non-island %d", node))
	}
	return c.csigma[i]
}

// JunctionsAt returns the junction ids touching a node.
func (c *Circuit) JunctionsAt(node int) []int { return c.nodeJuncs[node] }

// JunctionNeighbors returns the ids of junctions adjacent to junction
// jid (sharing a node or linked through one capacitor).
func (c *Circuit) JunctionNeighbors(jid int) []int { return c.juncNbrs[jid] }

// ExternalVoltages fills dst (length NumExternals) with source voltages
// at time t and returns it; dst may be nil.
func (c *Circuit) ExternalVoltages(dst []float64, t float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(c.externals))
	}
	for s, id := range c.externals {
		dst[s] = c.sources[id].V(t)
	}
	return dst
}

// IslandPotentials computes the potential of every island for electron
// counts n (length NumIslands, in island order) at time t, writing into
// dst (allocated if nil). Potentials follow
//
//	v = Cinv * (q_bg - e*n) + mext * v_ext.
func (c *Circuit) IslandPotentials(dst []float64, n []int, t float64) []float64 {
	ni := len(c.islands)
	if len(n) != ni {
		panic(fmt.Sprintf("circuit: IslandPotentials electron vector length %d, want %d", len(n), ni))
	}
	if dst == nil {
		dst = make([]float64, ni)
	}
	q := c.ChargeVector(nil, n)
	vext := c.ExternalVoltages(nil, t)
	c.IslandPotentialsRange(dst, q, vext, 0, ni)
	return dst
}

// ChargeVector fills dst (island order, allocated when nil) with each
// island's total charge q_bg - e*n.
func (c *Circuit) ChargeVector(dst []float64, n []int) []float64 {
	if dst == nil {
		dst = make([]float64, len(c.islands))
	}
	for i, id := range c.islands {
		dst[i] = c.bgCharge[id] - units.E*float64(n[i])
	}
	return dst
}

// IslandPotentialsRange computes rows [lo, hi) of the potential solve
// v = Cinv*q + mext*vext into dst (island order), for a precomputed
// island charge vector q (see ChargeVector) and external voltages vext.
// Rows are independent, so disjoint ranges can be computed concurrently
// — the solver's parallel full refresh shards the matrix-vector product
// this way.
func (c *Circuit) IslandPotentialsRange(dst, q, vext []float64, lo, hi int) {
	c.pot.SolveRange(dst, q, vext, lo, hi)
}

// NodePotential returns the potential of any node given precomputed
// island potentials (island order) and the time.
func (c *Circuit) NodePotential(id int, islandV []float64, t float64) float64 {
	if i := c.islandIdx[id]; i >= 0 {
		return islandV[i]
	}
	return c.sources[id].V(t)
}

// ExternalDelta fills dst (island order) with the island potential
// change caused by external voltages moving from vext0 to vext1:
// dv = mext * (v1 - v0).
func (c *Circuit) ExternalDelta(dst, vext0, vext1 []float64) {
	c.pot.ExternalDelta(dst, vext0, vext1)
}
