package circuit

import (
	"math"
	"testing"

	"semsim/internal/units"
)

// buildChain constructs an n-island uniform tunnel-junction array
// (source - n islands - drain, each island gated) under the given build
// options — the locality-rich topology the sparse engine targets.
func buildChain(t *testing.T, n int, bo BuildOptions) (*Circuit, []int) {
	t.Helper()
	c := New()
	src := c.AddNode("src", External)
	drn := c.AddNode("drn", External)
	gate := c.AddNode("gate", External)
	c.SetSource(src, DC(0.02))
	c.SetSource(drn, DC(-0.02))
	c.SetSource(gate, DC(0.011))
	isls := make([]int, n)
	for i := range isls {
		isls[i] = c.AddNode("", Island)
	}
	prev := src
	for i, isl := range isls {
		c.AddJunction(prev, isl, 1e6, (1+0.1*float64(i%7))*aF)
		c.AddCap(isl, gate, 0.3*aF)
		prev = isl
	}
	c.AddJunction(prev, drn, 1e6, 1.2*aF)
	if err := c.BuildWith(bo); err != nil {
		t.Fatal(err)
	}
	return c, isls
}

func chainElectrons(n int) []int {
	ns := make([]int, n)
	for i := range ns {
		ns[i] = (i % 5) - 2
	}
	return ns
}

// TestSparseExactBitIdentical: the ε=0 sparse engine must reproduce the
// dense engine bit for bit on every operation the solver uses.
func TestSparseExactBitIdentical(t *testing.T) {
	c, isls := buildChain(t, 40, BuildOptions{})
	dense := c.Potentials()
	sp, err := c.PotentialEngine(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Sparse() || sp.Truncated() {
		t.Fatalf("exact sparse engine: sparse=%v truncated=%v", sp.Sparse(), sp.Truncated())
	}
	ni := c.NumIslands()
	ns := chainElectrons(ni)
	q := c.ChargeVector(nil, ns)
	vext := c.ExternalVoltages(nil, 0)

	vd := make([]float64, ni)
	vs := make([]float64, ni)
	dense.SolveRange(vd, q, vext, 0, ni)
	sp.SolveRange(vs, q, vext, 0, ni)
	for i := range vd {
		if vd[i] != vs[i] {
			t.Fatalf("SolveRange[%d]: dense %v sparse %v", i, vd[i], vs[i])
		}
	}
	// Per-event shifts, both endpoints islands and one endpoint external.
	for _, pair := range [][2]int{{isls[3], isls[4]}, {0, isls[0]}, {isls[ni-1], 1}} {
		vd2 := append([]float64(nil), vd...)
		vs2 := append([]float64(nil), vs...)
		dense.Shift(vd2, pair[0], pair[1], units.E)
		sp.Shift(vs2, pair[0], pair[1], units.E)
		for i := range vd2 {
			if vd2[i] != vs2[i] {
				t.Fatalf("Shift %v [%d]: dense %v sparse %v", pair, i, vd2[i], vs2[i])
			}
		}
		if dw1, dw2 := dense.DeltaWElectron(pair[0], pair[1], 0.001, -0.002), sp.DeltaWElectron(pair[0], pair[1], 0.001, -0.002); dw1 != dw2 {
			t.Fatalf("DeltaW %v: dense %v sparse %v", pair, dw1, dw2)
		}
		for k := 0; k < ni; k += 7 {
			if s1, s2 := dense.PotentialShift(k, pair[0], pair[1], units.E), sp.PotentialShift(k, pair[0], pair[1], units.E); s1 != s2 {
				t.Fatalf("PotentialShift %v k=%d: dense %v sparse %v", pair, k, s1, s2)
			}
		}
	}
	// Input-change deltas.
	vext1 := append([]float64(nil), vext...)
	vext1[2] += 0.004
	dd := make([]float64, ni)
	ds := make([]float64, ni)
	dense.ExternalDelta(dd, vext, vext1)
	sp.ExternalDelta(ds, vext, vext1)
	for i := range dd {
		if dd[i] != ds[i] {
			t.Fatalf("ExternalDelta[%d]: dense %v sparse %v", i, dd[i], ds[i])
		}
	}
}

// TestNativeSparseBuildMatchesDense: a circuit built natively sparse
// (no dense inverse ever formed) must agree with the dense build to
// solver accuracy, and its potential error must respect the bound.
func TestNativeSparseBuildMatchesDense(t *testing.T) {
	const n = 60
	cd, _ := buildChain(t, n, BuildOptions{})
	for _, eps := range []float64{1e-14, 1e-6, 1e-3} {
		cs, _ := buildChain(t, n, BuildOptions{SparsePotentials: true, CinvTruncation: eps})
		if cs.CMatrix() != nil {
			t.Fatal("native sparse build formed the dense matrix")
		}
		pe := cs.Potentials()
		ns := chainElectrons(n)
		vd := cd.IslandPotentials(nil, ns, 0)
		vs := cs.IslandPotentials(nil, ns, 0)
		q := cd.ChargeVector(nil, ns)
		vext := cd.ExternalVoltages(nil, 0)
		qmax, vmax := 0.0, 0.0
		for _, x := range q {
			qmax = math.Max(qmax, math.Abs(x))
		}
		for _, x := range vext {
			vmax = math.Max(vmax, math.Abs(x))
		}
		bound := pe.RefreshErrorBound(qmax, vmax)
		// Allow rounding headroom on top of the truncation bound: the
		// sparse solve and the dense inverse round differently.
		slack := 1e-11 * math.Max(vmax, 1)
		for i := range vd {
			if d := math.Abs(vd[i] - vs[i]); d > bound+slack {
				t.Fatalf("eps=%g island %d: |dense-sparse| = %g exceeds bound %g", eps, i, d, bound)
			}
		}
		if eps >= 1e-3 && !pe.Truncated() {
			t.Fatalf("eps=%g dropped nothing on a %d-island chain", eps, n)
		}
		if pe.Truncated() && pe.NNZ() >= n*n {
			t.Fatalf("eps=%g: truncated engine stores %d entries (full %d)", eps, pe.NNZ(), n*n)
		}
		if f := pe.Fill(); f < 1 {
			t.Fatalf("eps=%g: fill ratio %g < 1", eps, f)
		}
	}
}

// TestPotentialEngineRules pins the derivation rules: caching, implied
// sparse, and the errors for unavailable backends.
func TestPotentialEngineRules(t *testing.T) {
	c, _ := buildChain(t, 10, BuildOptions{})
	if e, err := c.PotentialEngine(false, 0); err != nil || e != c.Potentials() {
		t.Fatalf("dense request: engine %p err %v, want built %p", e, err, c.Potentials())
	}
	e1, err := c.PotentialEngine(true, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.PotentialEngine(false, 1e-6) // eps > 0 implies sparse
	if err != nil || e2 != e1 {
		t.Fatalf("derived engines not cached: %p vs %p (err %v)", e1, e2, err)
	}

	cs, _ := buildChain(t, 10, BuildOptions{SparsePotentials: true, CinvTruncation: 1e-6})
	if _, err := cs.PotentialEngine(false, 0); err == nil {
		t.Fatal("dense engine served from a truncated build")
	}
	if _, err := cs.PotentialEngine(true, 1e-9); err == nil {
		t.Fatal("finer truncation served from a coarser build")
	}
	if e, err := cs.PotentialEngine(true, 1e-6); err != nil || e != cs.Potentials() {
		t.Fatalf("built config not served as built engine: %v", err)
	}
	coarse, err := cs.PotentialEngine(true, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NNZ() > cs.Potentials().NNZ() {
		t.Fatal("re-truncation grew the row storage")
	}

	// Sparse-exact built circuit keeps dense data: both views available.
	ce, _ := buildChain(t, 10, BuildOptions{SparsePotentials: true})
	if !ce.Potentials().Sparse() {
		t.Fatal("sparse build produced a dense engine")
	}
	dv, err := ce.PotentialEngine(false, 0)
	if err != nil || dv.Sparse() {
		t.Fatalf("dense view on sparse-exact build: %v", err)
	}
}

// TestRowShards: boundaries must be monotone, span all rows, and
// balance stored nonzeros to within a row's worth of slack.
func TestRowShards(t *testing.T) {
	c, _ := buildChain(t, 200, BuildOptions{SparsePotentials: true, CinvTruncation: 1e-4})
	pe := c.Potentials()
	for _, parts := range []int{2, 3, 8} {
		b := pe.RowShards(parts)
		if len(b) != parts+1 || b[0] != 0 || b[parts] != c.NumIslands() {
			t.Fatalf("parts=%d: bad bounds %v", parts, b)
		}
		for w := 1; w <= parts; w++ {
			if b[w] < b[w-1] {
				t.Fatalf("parts=%d: non-monotone bounds %v", parts, b)
			}
		}
	}
	if pe.RowShards(1) != nil {
		t.Fatal("single shard should return nil")
	}
	if c.Potentials().RowShards(0) != nil {
		t.Fatal("parts=0 should return nil")
	}
	d, _ := buildChain(t, 20, BuildOptions{})
	if d.Potentials().RowShards(4) != nil {
		t.Fatal("dense engine should not shard by nnz")
	}
}

// TestPotentialShiftZeroAlloc: the per-event hot paths of both engines
// must not allocate.
func TestPotentialShiftZeroAlloc(t *testing.T) {
	c, isls := buildChain(t, 64, BuildOptions{})
	sp, err := c.PotentialEngine(true, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ni := c.NumIslands()
	ns := chainElectrons(ni)
	v := c.IslandPotentials(nil, ns, 0)
	q := c.ChargeVector(nil, ns)
	vext := c.ExternalVoltages(nil, 0)
	dv := make([]float64, ni)
	for _, pe := range []*Potentials{c.Potentials(), sp} {
		name := "dense"
		if pe.Sparse() {
			name = "sparse"
		}
		sink := 0.0
		allocs := testing.AllocsPerRun(100, func() {
			pe.Shift(v, isls[3], isls[4], units.E)
			pe.Shift(v, isls[4], isls[3], units.E)
			sink += pe.PotentialShift(2, isls[3], isls[4], units.E)
			sink += pe.DeltaWElectron(isls[3], isls[4], v[3], v[4])
			pe.SolveRange(dv, q, vext, 0, ni)
			pe.ExternalDelta(dv, vext, vext)
		})
		if allocs != 0 {
			t.Errorf("%s engine hot path allocates %.1f/op", name, allocs)
		}
		_ = sink
	}
}
