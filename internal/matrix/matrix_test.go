package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"semsim/internal/rng"
)

// randSPD builds a random diagonally dominant symmetric matrix, which
// is guaranteed SPD — the same structural class as capacitance matrices.
func randSPD(n int, r *rng.Source) *Sym {
	m := NewSym(n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := i + 1; j < n; j++ {
			v := -r.Float64() // off-diagonals negative, like -C_ij couplings
			m.SetSym(i, j, v)
		}
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(m.At(i, j))
			}
		}
		m.SetSym(i, i, rowSum+0.5+r.Float64())
	}
	return m
}

func TestSolveReconstructs(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		m := randSPD(n, r)
		ch, err := Factor(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		b := make([]float64, n)
		m.MulVec(b, x)
		ch.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: solve mismatch at %d: got %g want %g", n, i, b[i], x[i])
			}
		}
	}
}

func TestInverseIdentity(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 4, 17, 40} {
		m := randSPD(n, r)
		inv, err := InvertSPD(m)
		if err != nil {
			t.Fatal(err)
		}
		// Check M * M^-1 ~ I column by column.
		col := make([]float64, n)
		prod := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				col[i] = inv.At(i, j)
			}
			m.MulVec(prod, col)
			for i := 0; i < n; i++ {
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(prod[i]-want) > 1e-8 {
					t.Fatalf("n=%d: (M*Minv)[%d][%d] = %g, want %g", n, i, j, prod[i], want)
				}
			}
		}
	}
}

func TestInverseIsSymmetric(t *testing.T) {
	m := randSPD(20, rng.New(3))
	inv, err := InvertSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if inv.At(i, j) != inv.At(j, i) {
				t.Fatalf("inverse not exactly symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	m := NewSym(2)
	m.SetSym(0, 0, 1)
	m.SetSym(1, 1, -1) // indefinite
	if _, err := Factor(m); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
	zero := NewSym(3) // all-zero: island with no capacitance
	if _, err := Factor(zero); err == nil {
		t.Fatal("expected error factoring the zero matrix")
	}
}

func TestAddSymDiagonalOnce(t *testing.T) {
	m := NewSym(2)
	m.AddSym(0, 0, 2)
	if m.At(0, 0) != 2 {
		t.Fatalf("diagonal AddSym applied twice: got %g", m.At(0, 0))
	}
	m.AddSym(0, 1, -1)
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Fatalf("off-diagonal AddSym not mirrored: %g %g", m.At(0, 1), m.At(1, 0))
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewSym(2)
	m.SetSym(0, 1, 5)
	c := m.Clone()
	c.SetSym(0, 1, 7)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowView(t *testing.T) {
	m := NewSym(3)
	m.SetSym(1, 0, 4)
	m.SetSym(1, 2, 6)
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
}

// Property: for random SPD matrices, solving twice against M*x always
// recovers x to tight tolerance.
func TestQuickSolveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rng.New(seed)
		m := randSPD(n, r)
		ch, err := Factor(m)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		m.MulVec(b, x)
		ch.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong dims did not panic")
		}
	}()
	NewSym(3).MulVec(make([]float64, 2), make([]float64, 3))
}

func BenchmarkFactor100(b *testing.B) {
	m := randSPD(100, rng.New(9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInverse100(b *testing.B) {
	m := randSPD(100, rng.New(9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := InvertSPD(m); err != nil {
			b.Fatal(err)
		}
	}
}
