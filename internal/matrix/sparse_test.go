package matrix

import (
	"math"
	"sort"
	"testing"

	"semsim/internal/rng"
)

// randSparseSPD builds a random sparse symmetric diagonally dominant
// matrix (hence SPD) with roughly deg off-diagonal couplings per row —
// the shape of an island capacitance matrix — plus its triplet list.
func randSparseSPD(n, deg int, r *rng.Source) *CSR {
	var ts []Triplet
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + r.Float64()
	}
	for i := 0; i < n; i++ {
		for k := 0; k < deg; k++ {
			j := int(r.Uint64() % uint64(n))
			if j == i {
				continue
			}
			c := 0.1 + r.Float64()
			ts = append(ts, Triplet{i, j, -c}, Triplet{j, i, -c})
			diag[i] += c
			diag[j] += c
		}
	}
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, diag[i]})
	}
	return CSRFromTriplets(n, n, ts)
}

func csrToSym(a *CSR) *Sym {
	m := NewSym(a.NumRows)
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			m.data[i*a.NumRows+int(c)] = vals[k]
		}
	}
	return m
}

func TestCSRFromTriplets(t *testing.T) {
	a := CSRFromTriplets(3, 3, []Triplet{
		{0, 1, 2}, {1, 0, 2}, {0, 0, 5}, {0, 1, 3}, {2, 2, 1}, {0, 0, -1},
	})
	if got := a.At(0, 1); got != 5 {
		t.Errorf("duplicate (0,1) entries not summed: got %g, want 5", got)
	}
	if got := a.At(0, 0); got != 4 {
		t.Errorf("duplicate (0,0) entries not summed: got %g, want 4", got)
	}
	if got := a.At(1, 1); got != 0 {
		t.Errorf("absent entry reads %g, want 0", got)
	}
	if a.NNZ() != 4 {
		t.Errorf("nnz = %d, want 4", a.NNZ())
	}
	// Column indices must be strictly increasing within each row.
	for i := 0; i < a.NumRows; i++ {
		cols, _ := a.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly increasing: %v", i, cols)
			}
		}
	}
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	a.MulVec(dst, x)
	want := []float64{4*1 + 5*2, 2 * 1, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

// TestRCMIsPermutation is the property test of the ordering: for any
// pattern — connected or not — RCM must return a permutation of 0..n-1.
func TestRCMIsPermutation(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(r.Uint64()%200)
		deg := int(r.Uint64() % 4) // deg 0 gives diagonal matrices: many components
		a := randSparseSPD(n, deg, r)
		perm := RCM(a)
		if len(perm) != n {
			t.Fatalf("n=%d: perm length %d", n, len(perm))
		}
		sorted := append([]int(nil), perm...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("n=%d: RCM is not a permutation: sorted[%d]=%d", n, i, v)
			}
		}
	}
}

// TestRCMReducesFill checks the ordering earns its keep on a
// shuffled banded matrix: factor fill under RCM must not exceed fill
// under the shuffled natural order.
func TestRCMReducesFill(t *testing.T) {
	r := rng.New(9)
	n := 200
	shuf := make([]int, n)
	for i := range shuf {
		shuf[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		shuf[i], shuf[j] = shuf[j], shuf[i]
	}
	var ts []Triplet
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		a, b := shuf[i], shuf[i+1]
		ts = append(ts, Triplet{a, b, -1}, Triplet{b, a, -1})
		diag[a]++
		diag[b]++
	}
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, diag[i]})
	}
	a := CSRFromTriplets(n, n, ts)
	natural, err := FactorCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := FactorCSR(a, RCM(a))
	if err != nil {
		t.Fatal(err)
	}
	if ordered.NNZ() > natural.NNZ() {
		t.Errorf("RCM fill %d exceeds natural-order fill %d", ordered.NNZ(), natural.NNZ())
	}
	// A shuffled path graph has a chain factor under RCM: no fill at all.
	if want := a.LowerNNZ(); ordered.NNZ() != want {
		t.Errorf("RCM factor of a path graph has fill: nnz %d, want %d", ordered.NNZ(), want)
	}
}

func TestFactorCSRMatchesDense(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 5, 40, 120} {
		a := randSparseSPD(n, 3, r)
		ch, err := FactorCSR(a, RCM(a))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dense, err := Factor(csrToSym(a))
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64() - 0.5
		}
		want := append([]float64(nil), b...)
		dense.Solve(want)
		ch.Solve(b)
		for i := range b {
			if d := math.Abs(b[i] - want[i]); d > 1e-10*(math.Abs(want[i])+1) {
				t.Fatalf("n=%d: sparse solve[%d]=%g, dense %g", n, i, b[i], want[i])
			}
		}
	}
}

// TestInverseRowRoundTrip is the factorization property test: every
// computed inverse row must satisfy A * row = e_i to tight tolerance.
func TestInverseRowRoundTrip(t *testing.T) {
	r := rng.New(5)
	n := 150
	a := randSparseSPD(n, 3, r)
	ch, err := FactorCSR(a, RCM(a))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, n)
	w := make([]float64, n)
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		ch.InverseRow(i, row, w)
		a.MulVec(res, row)
		for j := 0; j < n; j++ {
			want := 0.0
			if j == i {
				want = 1
			}
			if d := math.Abs(res[j] - want); d > 1e-10 {
				t.Fatalf("row %d: (A * Ainv_row)[%d] = %g, want %g", i, j, res[j], want)
			}
		}
	}
}

func TestFactorCSRNotPositiveDefinite(t *testing.T) {
	a := CSRFromTriplets(2, 2, []Triplet{
		{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 1, 1},
	})
	if _, err := FactorCSR(a, nil); err == nil {
		t.Fatal("indefinite matrix factored without error")
	}
	// Missing diagonal must be reported, not crash.
	b := CSRFromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 1, -0.5}, {1, 0, -0.5}})
	if _, err := FactorCSR(b, nil); err == nil {
		t.Fatal("matrix with missing diagonal factored without error")
	}
}

// TestSparseSolveMatchesInverseRow pins the internal consistency the
// potential engine relies on: Solve and InverseRow are two routes to
// the same linear system.
func TestSparseSolveMatchesInverseRow(t *testing.T) {
	r := rng.New(11)
	n := 80
	a := randSparseSPD(n, 2, r)
	ch, err := FactorCSR(a, RCM(a))
	if err != nil {
		t.Fatal(err)
	}
	i := 17
	b := make([]float64, n)
	b[i] = 1
	ch.Solve(b)
	row := make([]float64, n)
	w := make([]float64, n)
	ch.InverseRow(i, row, w)
	for j := range b {
		if b[j] != row[j] {
			t.Fatalf("Solve(e_%d)[%d]=%g differs from InverseRow %g", i, j, b[j], row[j])
		}
	}
}
