package matrix

// Sparse symmetric linear algebra for the locality-aware potential
// engine: CSR assembly from triplets, a reverse Cuthill–McKee
// fill-reducing ordering, and an elimination-tree up-looking sparse
// Cholesky factorization with triangular solves. Everything is standard
// library only.
//
// The target matrix is the island capacitance matrix C_II: SPD,
// diagonally dominant, with a handful of nonzeros per row (an island
// couples only to its junction and capacitor neighbours). Its Cholesky
// factor stays sparse under a bandwidth-reducing ordering, so solving
// C x = e_i per row costs O(nnz(L)) instead of the dense O(n^2) — which
// is what makes computing C^-1 rows on demand viable for the
// multi-thousand-junction benchmarks where dense inversion takes
// minutes and O(n^2) memory.

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is one (row, col, value) matrix entry; duplicates are summed
// by CSRFromTriplets.
type Triplet struct {
	I, J int
	V    float64
}

// CSR is a sparse matrix in compressed sparse row form. Within a row,
// column indices are strictly increasing. The fields are exported for
// allocation-free walks in hot code; treat them as read-only.
type CSR struct {
	NumRows, NumCols int
	// RowPtr has length NumRows+1; row i occupies Col/Val[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int
	Col    []int32
	Val    []float64
}

// CSRFromTriplets assembles a CSR matrix, summing duplicate entries.
// The sort is stable and duplicate values are added left to right in
// input order, so assembly is bit-reproducible and matches a
// dense-accumulation loop applying the same triplets in the same order.
func CSRFromTriplets(rows, cols int, ts []Triplet) *CSR {
	for _, t := range ts {
		if t.I < 0 || t.I >= rows || t.J < 0 || t.J >= cols {
			panic(fmt.Sprintf("matrix: triplet (%d,%d) outside %dx%d", t.I, t.J, rows, cols))
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].I != sorted[b].I {
			return sorted[a].I < sorted[b].I
		}
		return sorted[a].J < sorted[b].J
	})
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		i, j := sorted[k].I, sorted[k].J
		v := sorted[k].V
		for k++; k < len(sorted) && sorted[k].I == i && sorted[k].J == j; k++ {
			v += sorted[k].V
		}
		m.Col = append(m.Col, int32(j))
		m.Val = append(m.Val, v)
		m.RowPtr[i+1] = len(m.Col)
	}
	// Rows with no entries inherit the running offset.
	for i := 1; i <= rows; i++ {
		if m.RowPtr[i] < m.RowPtr[i-1] {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m
}

// NNZ returns the stored entry count.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row i.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns entry (i, j) by binary search, 0 when absent.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == j {
		return vals[lo]
	}
	return 0
}

// MulVec computes dst = M x; dst and x must not alias.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.NumRows || len(x) != m.NumCols {
		panic(fmt.Sprintf("matrix: CSR MulVec dimension mismatch: %dx%d, len(dst)=%d len(x)=%d",
			m.NumRows, m.NumCols, len(dst), len(x)))
	}
	for i := 0; i < m.NumRows; i++ {
		cols, vals := m.Row(i)
		s := 0.0
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		dst[i] = s
	}
}

// LowerNNZ counts the entries on or below the diagonal (the natural
// denominator for Cholesky fill-in ratios of a symmetric matrix).
func (m *CSR) LowerNNZ() int {
	n := 0
	for i := 0; i < m.NumRows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if int(c) <= i {
				n++
			}
		}
	}
	return n
}

// RCM returns a reverse Cuthill–McKee ordering of the (structurally
// symmetric) sparsity pattern of a: perm[new] = old. Each connected
// component is numbered by breadth-first search from a pseudo-peripheral
// node with neighbours visited in ascending degree, and the whole
// ordering is reversed — the classic bandwidth/fill-reducing ordering
// for the mesh-like graphs capacitance matrices form. The result is
// deterministic (ties break on node index).
func RCM(a *CSR) []int {
	n := a.NumRows
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	visited := make([]bool, n)
	perm := make([]int, 0, n)
	queue := make([]int, 0, n)
	nbrs := make([]int, 0, 16)

	// bfs appends the component reachable from root to out in BFS order
	// (degree-ascending neighbours) and returns the slice plus the index
	// where the last level starts.
	bfs := func(root int, mark []bool, out []int) ([]int, int) {
		start := len(out)
		mark[root] = true
		out = append(out, root)
		lastLevel := start
		levelEnd := len(out)
		for head := start; head < len(out); head++ {
			if head == levelEnd {
				lastLevel = head
				levelEnd = len(out)
			}
			u := out[head]
			nbrs = nbrs[:0]
			cols, _ := a.Row(u)
			for _, c := range cols {
				v := int(c)
				if v != u && !mark[v] {
					mark[v] = true
					nbrs = append(nbrs, v)
				}
			}
			sort.Slice(nbrs, func(x, y int) bool {
				if deg[nbrs[x]] != deg[nbrs[y]] {
					return deg[nbrs[x]] < deg[nbrs[y]]
				}
				return nbrs[x] < nbrs[y]
			})
			out = append(out, nbrs...)
		}
		return out, lastLevel
	}

	scratch := make([]bool, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		// George–Liu pseudo-peripheral sweep: BFS from the current root,
		// re-root at a minimum-degree node of the deepest level, and stop
		// once the eccentricity (proxied by where the last level starts)
		// stops growing. A few sweeps suffice in practice.
		root, prevDepth := s, -1
		for iter := 0; iter < 8; iter++ {
			for i := range scratch {
				scratch[i] = false
			}
			queue = queue[:0]
			var last int
			queue, last = bfs(root, scratch, queue)
			if last <= prevDepth {
				break
			}
			prevDepth = last
			best, bestDeg := root, n+1
			for _, u := range queue[last:] {
				if deg[u] < bestDeg {
					best, bestDeg = u, deg[u]
				}
			}
			if best == root {
				break
			}
			root = best
		}
		perm, _ = bfs(root, visited, perm)
	}
	// Reverse Cuthill–McKee: reversing the concatenated component
	// orderings reverses each component internally, which is what empties
	// the factor's lower profile.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// SparseChol is a sparse Cholesky factorization P A P^T = L L^T of an
// SPD matrix in CSR form. L is stored in compressed sparse column form
// with the diagonal entry first in each column, which serves both
// triangular sweeps: the forward solve scatters down each column, the
// transposed solve gathers up it.
type SparseChol struct {
	n      int
	perm   []int // perm[new] = old
	pinv   []int // pinv[old] = new
	colptr []int // length n+1
	rowidx []int32
	val    []float64
}

// FactorCSR computes the sparse Cholesky factorization of a under the
// given ordering (perm[new] = old; nil means natural order). Only the
// lower triangle of a (in permuted coordinates) is read; a must be
// structurally and numerically symmetric. It returns
// ErrNotPositiveDefinite when a pivot is not strictly positive.
//
// The factorization is the standard up-looking algorithm: the
// elimination tree of the permuted pattern is computed first, each row's
// factor pattern is then enumerated by walking the tree (ereach), and
// the numeric pass solves one sparse triangular system per row. Cost is
// O(nnz(L)) space and O(sum of squared column counts) time — for
// RCM-ordered capacitance matrices both stay within a small constant of
// nnz(A).
func FactorCSR(a *CSR, perm []int) (*SparseChol, error) {
	n := a.NumRows
	if a.NumCols != n {
		panic("matrix: FactorCSR needs a square matrix")
	}
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	if len(perm) != n {
		panic("matrix: FactorCSR permutation length mismatch")
	}
	ch := &SparseChol{n: n, perm: perm, pinv: make([]int, n)}
	for newI, oldI := range perm {
		ch.pinv[oldI] = newI
	}

	// Permuted strictly-lower row pattern plus diagonal values: row k
	// (new order) lists entries (j, v) with j < k.
	rptr := make([]int, n+1)
	diag := make([]float64, n)
	hasDiag := make([]bool, n)
	for k := 0; k < n; k++ {
		cols, _ := a.Row(perm[k])
		cnt := 0
		for _, c := range cols {
			if j := ch.pinv[c]; j < k {
				cnt++
			}
		}
		rptr[k+1] = rptr[k] + cnt
	}
	rcol := make([]int32, rptr[n])
	rval := make([]float64, rptr[n])
	fill := make([]int, n)
	copy(fill, rptr)
	for k := 0; k < n; k++ {
		cols, vals := a.Row(perm[k])
		for idx, c := range cols {
			j := ch.pinv[c]
			switch {
			case j < k:
				rcol[fill[k]] = int32(j)
				rval[fill[k]] = vals[idx]
				fill[k]++
			case j == k:
				diag[k] = vals[idx]
				hasDiag[k] = true
			}
		}
	}
	for k := 0; k < n; k++ {
		if !hasDiag[k] {
			return nil, fmt.Errorf("%w (row %d has no diagonal entry)", ErrNotPositiveDefinite, perm[k])
		}
	}

	// Elimination tree via path-compressing ancestor pointers.
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := rptr[k]; p < rptr[k+1]; p++ {
			for j := int(rcol[p]); j != -1 && j < k; {
				next := ancestor[j]
				ancestor[j] = k
				if next == -1 {
					parent[j] = k
					break
				}
				j = next
			}
		}
	}

	// ereach enumerates the nonzero pattern of factor row k (excluding
	// the diagonal) in topological order onto stack[top:], using marker w
	// stamped with k.
	w := make([]int, n)
	stack := make([]int, n)
	path := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	ereach := func(k int) int {
		top := n
		w[k] = k
		for p := rptr[k]; p < rptr[k+1]; p++ {
			ln := 0
			for j := int(rcol[p]); w[j] != k; j = parent[j] {
				path[ln] = j
				ln++
				w[j] = k
			}
			for ln > 0 {
				ln--
				top--
				stack[top] = path[ln]
			}
		}
		return top
	}

	// Symbolic pass: column counts (diagonal included).
	count := make([]int, n)
	for i := range count {
		count[i] = 1
	}
	for k := 0; k < n; k++ {
		for idx := ereach(k); idx < n; idx++ {
			count[stack[idx]]++
		}
	}
	ch.colptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		ch.colptr[j+1] = ch.colptr[j] + count[j]
	}
	nnz := ch.colptr[n]
	ch.rowidx = make([]int32, nnz)
	ch.val = make([]float64, nnz)

	// Numeric pass: up-looking, one sparse triangular solve per row.
	for i := range w {
		w[i] = -1
	}
	cend := make([]int, n)
	for j := 0; j < n; j++ {
		cend[j] = ch.colptr[j] + 1 // slot 0 of each column is the diagonal
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		for p := rptr[k]; p < rptr[k+1]; p++ {
			x[rcol[p]] = rval[p]
		}
		d := diag[k]
		for idx := ereach(k); idx < n; idx++ {
			j := stack[idx]
			lkj := x[j] / ch.val[ch.colptr[j]]
			x[j] = 0
			for p := ch.colptr[j] + 1; p < cend[j]; p++ {
				x[ch.rowidx[p]] -= ch.val[p] * lkj
			}
			d -= lkj * lkj
			ch.rowidx[cend[j]] = int32(k)
			ch.val[cend[j]] = lkj
			cend[j]++
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, k, d)
		}
		ch.rowidx[ch.colptr[k]] = int32(k)
		ch.val[ch.colptr[k]] = math.Sqrt(d)
	}
	return ch, nil
}

// N returns the matrix dimension.
func (c *SparseChol) N() int { return c.n }

// NNZ returns the stored entry count of the factor L.
func (c *SparseChol) NNZ() int { return c.colptr[c.n] }

// Solve solves A x = b in place (b in original, unpermuted indexing).
func (c *SparseChol) Solve(b []float64) {
	if len(b) != c.n {
		panic("matrix: sparse Solve dimension mismatch")
	}
	w := make([]float64, c.n)
	for k := 0; k < c.n; k++ {
		w[k] = b[c.perm[k]]
	}
	c.solvePermuted(w, 0)
	for k := 0; k < c.n; k++ {
		b[c.perm[k]] = w[k]
	}
}

// InverseRow computes row i of A^-1 into out (length n, original
// indexing) using scratch w (length n, any contents). By symmetry this
// is also column i, i.e. the solution of A x = e_i. The call performs no
// allocations, so callers building many inverse rows can stream.
func (c *SparseChol) InverseRow(i int, out, w []float64) {
	if len(out) != c.n || len(w) != c.n {
		panic("matrix: InverseRow dimension mismatch")
	}
	for k := range w {
		w[k] = 0
	}
	k0 := c.pinv[i]
	w[k0] = 1
	c.solvePermuted(w, k0)
	for k := 0; k < c.n; k++ {
		out[c.perm[k]] = w[k]
	}
}

// solvePermuted runs both triangular sweeps on a right-hand side already
// in permuted coordinates, skipping the leading zeros of the forward
// sweep (from solving against e_{k0}).
func (c *SparseChol) solvePermuted(w []float64, k0 int) {
	n := c.n
	for k := k0; k < n; k++ {
		xk := w[k]
		if xk == 0 {
			continue
		}
		xk /= c.val[c.colptr[k]]
		w[k] = xk
		for p := c.colptr[k] + 1; p < c.colptr[k+1]; p++ {
			w[c.rowidx[p]] -= c.val[p] * xk
		}
	}
	for k := n - 1; k >= 0; k-- {
		s := w[k]
		for p := c.colptr[k] + 1; p < c.colptr[k+1]; p++ {
			s -= c.val[p] * w[c.rowidx[p]]
		}
		w[k] = s / c.val[c.colptr[k]]
	}
}
