// Package matrix implements the dense symmetric linear algebra the
// simulator needs: Cholesky factorization, triangular solves, and full
// inversion of symmetric positive-definite matrices.
//
// The one SPD matrix in the problem is the island capacitance matrix
// C_II (diagonally dominant with positive diagonal by construction, so
// SPD whenever every island has nonzero total capacitance). Its inverse
// appears directly in the free-energy expression (Eq. 2 of the paper)
// and in every node-potential update, so we factor once per circuit and
// store the explicit inverse.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization
// encounters a non-positive pivot. For a capacitance matrix this means
// an island is floating with no capacitance at all, which is a circuit
// description error.
var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

// Sym is a dense symmetric n-by-n matrix stored as a full square for
// simple indexing. Only SetSym keeps the two triangles consistent;
// callers constructing a Sym by hand must preserve symmetry themselves.
type Sym struct {
	n    int
	data []float64
}

// NewSym returns an n-by-n symmetric matrix of zeros.
func NewSym(n int) *Sym {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Sym{n: n, data: make([]float64, n*n)}
}

// N returns the dimension.
func (m *Sym) N() int { return m.n }

// At returns element (i, j).
func (m *Sym) At(i, j int) float64 { return m.data[i*m.n+j] }

// SetSym sets elements (i, j) and (j, i) to v.
func (m *Sym) SetSym(i, j int, v float64) {
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// AddSym adds v to elements (i, j) and (j, i); for diagonal entries the
// value is added once.
func (m *Sym) AddSym(i, j int, v float64) {
	m.data[i*m.n+j] += v
	if i != j {
		m.data[j*m.n+i] += v
	}
}

// Row returns a read-only view of row i (valid until the matrix is
// modified). For a symmetric matrix this is also column i.
func (m *Sym) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// Clone returns a deep copy.
func (m *Sym) Clone() *Sym {
	c := NewSym(m.n)
	copy(c.data, m.data)
	return c
}

// MulVec computes dst = M * x. dst and x must have length N and must
// not alias.
func (m *Sym) MulVec(dst, x []float64) {
	if len(dst) != m.n || len(x) != m.n {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch: n=%d len(dst)=%d len(x)=%d", m.n, len(dst), len(x)))
	}
	for i := 0; i < m.n; i++ {
		row := m.data[i*m.n : (i+1)*m.n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Cholesky holds the lower-triangular factor L with M = L * L^T,
// packed: row i occupies l[i*(i+1)/2 : i*(i+1)/2 + i + 1], so the
// factor costs n*(n+1)/2 floats instead of a full square — on the
// 6988-junction compact-model build that difference is hundreds of
// megabytes of peak memory.
type Cholesky struct {
	n int
	l []float64 // packed row-major lower triangle
}

// Factor computes the Cholesky factorization of m. It returns
// ErrNotPositiveDefinite if a pivot is not strictly positive. The input
// is read directly (no full-matrix clone) and the factor is stored
// packed; the arithmetic — operation order included — matches the
// classic full-storage loop exactly, so factors and everything derived
// from them are bit-identical to the earlier implementation.
func Factor(m *Sym) (*Cholesky, error) {
	n := m.n
	ch := &Cholesky{n: n, l: make([]float64, n*(n+1)/2)}
	l := ch.l
	for j := 0; j < n; j++ {
		oj := j * (j + 1) / 2
		lj := l[oj : oj+j]
		d := m.At(j, j)
		for _, v := range lj {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		l[oj+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			oi := i * (i + 1) / 2
			s := m.At(i, j)
			li := l[oi : oi+j]
			for k, v := range lj {
				s -= li[k] * v
			}
			l[oi+j] = s * inv
		}
	}
	return ch, nil
}

// Solve solves M x = b in place: on return b contains x.
func (c *Cholesky) Solve(b []float64) {
	n := c.n
	if len(b) != n {
		panic("matrix: Solve dimension mismatch")
	}
	l := c.l
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		oi := i * (i + 1) / 2
		s := b[i]
		row := l[oi : oi+i]
		for k, v := range row {
			s -= v * b[k]
		}
		b[i] = s / l[oi+i]
	}
	// Back substitution L^T x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*(k+1)/2+i] * b[k]
		}
		b[i] = s / l[i*(i+1)/2+i]
	}
}

// Inverse computes the explicit inverse of the factored matrix by
// solving against each unit vector. Columns are solved in parallel
// blocks, and the back-substitution reads a transposed copy of the
// factor so both triangular sweeps stream memory sequentially — on
// benchmark-scale matrices (thousands of islands) the naive
// column-at-a-time loop is an order of magnitude slower. The result is
// symmetrized, since downstream code relies on C^-1 symmetry.
func (c *Cholesky) Inverse() *Sym {
	n := c.n
	inv := NewSym(n)
	// Transposed factor, packed upper row-major: row i of ut holds
	// L[k][i] for k = i..n-1, so the back substitution walks rows
	// sequentially. utOff(i) is where row i starts.
	utOff := func(i int) int { return i*n - i*(i-1)/2 }
	ut := make([]float64, n*(n+1)/2)
	for i := 0; i < n; i++ {
		oi := i * (i + 1) / 2
		for k := 0; k <= i; k++ {
			ut[utOff(k)+i-k] = c.l[oi+k]
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	cols := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := make([]float64, n)
			for j := range cols {
				for i := range x {
					x[i] = 0
				}
				x[j] = 1
				// Forward substitution L y = e_j; y[i] = 0 for i < j.
				for i := j; i < n; i++ {
					oi := i * (i + 1) / 2
					s := x[i]
					row := c.l[oi+j : oi+i]
					for k, v := range row {
						s -= v * x[j+k]
					}
					x[i] = s / c.l[oi+i]
				}
				// Back substitution L^T z = y using the transposed rows.
				for i := n - 1; i >= 0; i-- {
					oi := utOff(i)
					s := x[i]
					row := ut[oi+1 : oi+n-i]
					for k, v := range row {
						s -= v * x[i+1+k]
					}
					x[i] = s / ut[oi]
				}
				copy(inv.data[j*n:(j+1)*n], x)
			}
		}()
	}
	for j := 0; j < n; j++ {
		cols <- j
	}
	close(cols)
	wg.Wait()
	// inv currently holds columns as rows; the matrix is symmetric up
	// to round-off, so symmetrize in place.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (inv.data[i*n+j] + inv.data[j*n+i])
			inv.data[i*n+j] = v
			inv.data[j*n+i] = v
		}
	}
	return inv
}

// InvertSPD factors and inverts a symmetric positive-definite matrix.
func InvertSPD(m *Sym) (*Sym, error) {
	ch, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return ch.Inverse(), nil
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two equally-sized matrices; useful for tests.
func MaxAbsDiff(a, b *Sym) float64 {
	if a.n != b.n {
		panic("matrix: MaxAbsDiff dimension mismatch")
	}
	max := 0.0
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}
