package matrix

import (
	"errors"
	"math"
)

// ErrSingular is returned when LU factorization meets a zero pivot.
var ErrSingular = errors.New("matrix: singular matrix")

// Dense is a general (non-symmetric) dense matrix, used for the
// Newton-Raphson Jacobians of the SPICE-baseline transient solver —
// transconductance stamps break the symmetry that Cholesky needs.
type Dense struct {
	n    int
	data []float64
}

// NewDense returns an n-by-n zero matrix.
func NewDense(n int) *Dense {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{n: n, data: make([]float64, n*n)}
}

// N returns the dimension.
func (m *Dense) N() int { return m.n }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add accumulates into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// Zero clears the matrix for reuse across Newton iterations.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// LU is an in-place LU factorization with partial pivoting.
type LU struct {
	n    int
	lu   []float64
	perm []int
}

// FactorLU factors a copy of m.
func FactorLU(m *Dense) (*LU, error) {
	n := m.n
	f := &LU{n: n, lu: append([]float64(nil), m.data...), perm: make([]int, n)}
	for i := range f.perm {
		f.perm[i] = i
	}
	lu := f.lu
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		max := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu[r*n+col]); a > max {
				max, p = a, r
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != col {
			for k := 0; k < n; k++ {
				lu[p*n+k], lu[col*n+k] = lu[col*n+k], lu[p*n+k]
			}
			f.perm[p], f.perm[col] = f.perm[col], f.perm[p]
		}
		piv := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			factor := lu[r*n+col] / piv
			lu[r*n+col] = factor
			if factor == 0 {
				continue
			}
			row := lu[r*n : r*n+n]
			prow := lu[col*n : col*n+n]
			for k := col + 1; k < n; k++ {
				row[k] -= factor * prow[k]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b, writing x into dst (which may alias b).
func (f *LU) Solve(dst, b []float64) {
	n := f.n
	if len(dst) != n || len(b) != n {
		panic("matrix: LU solve dimension mismatch")
	}
	// Apply the permutation.
	x := make([]float64, n)
	for i, p := range f.perm {
		x[i] = b[p]
	}
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		row := f.lu[i*n : i*n+i]
		s := x[i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s / f.lu[i*n+i]
	}
	copy(dst, x)
}
