package matrix

import (
	"math"
	"testing"

	"semsim/internal/rng"
)

func randDense(n int, r *rng.Source) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64()*2-1)
		}
		m.Add(i, i, float64(n)) // keep it comfortably nonsingular
	}
	return m
}

func TestLUSolve(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{1, 2, 5, 20, 60} {
		m := randDense(n, r)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*4 - 2
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += m.At(i, j) * x[j]
			}
			b[i] = s
		}
		f, err := FactorLU(m)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		f.Solve(got, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, got[i], x[i])
			}
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the diagonal requires a row swap.
	m := NewDense(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	f, err := FactorLU(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{3, 7})
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("pivoted solve wrong: %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := FactorLU(m); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestDenseZero(t *testing.T) {
	m := NewDense(3)
	m.Set(1, 2, 5)
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestSolveAliasing(t *testing.T) {
	m := randDense(4, rng.New(8))
	f, err := FactorLU(m)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4}
	want := make([]float64, 4)
	f.Solve(want, b)
	f.Solve(b, b) // aliased
	for i := range b {
		if b[i] != want[i] {
			t.Fatal("aliased solve differs")
		}
	}
}
