// Package rng provides a small, fast, deterministic pseudo-random
// number generator for the Monte Carlo solver.
//
// Reproducibility across runs and platforms is a hard requirement for
// the paper's experiments (propagation-delay errors are averaged over
// nine fixed seeds), so the simulator does not use math/rand's global
// state. The generator is xoshiro256**, seeded through splitmix64 as
// its authors recommend.
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is
// not usable; construct with New.
//
//statecover:root save=MarshalBinary load=UnmarshalBinary
type Source struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two sources built
// from the same seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// A pathological all-zero state cannot occur: splitmix64 output is a
	// bijection of its (distinct) inputs, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Open returns a uniform float64 in the open interval (0, 1). The Monte
// Carlo time step -ln(r)/Gamma (Eq. 5 of the paper) requires r > 0.
func (r *Source) Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Exp returns an exponentially distributed waiting time with the given
// total rate (Eq. 5: dt = -ln(r)/rate). It panics if rate <= 0 because
// a non-positive total rate means the caller selected an event from an
// empty distribution.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(r.Open()) / rate
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Split returns a new Source deterministically derived from this one
// (consuming one value from the parent stream). Useful for giving
// independent reproducible streams to parallel sweep points.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// batchSize is the refill granularity of Batch. Two draws per Monte
// Carlo event (waiting time + selection) means one refill per ~128
// events; the buffer is one page of uint64s, small enough to stay
// cache-resident.
const batchSize = 256

// Batch draws from a Source through a refillable buffer: the underlying
// generator is advanced batchSize values at a time in a tight loop, and
// individual draws are single loads from the buffer. Consumption order
// equals generation order, so a Batch yields bit-for-bit the stream of
// the Source it wraps — batching is purely an amortization of the
// per-draw state update, never a reordering (see TestBatchMatchesSource).
//
// Checkpointing works in logical coordinates: MarshalBinary serializes
// the state of a plain Source that has produced exactly the values
// consumed so far, so snapshots are byte-compatible with Source's
// encoding regardless of how much of the buffer is prefetched. A Batch
// is not safe for concurrent use, mirroring Source.
//
//statecover:root save=MarshalBinary load=UnmarshalBinary
type Batch struct {
	src  Source            // underlying generator, ahead of consumption by n-pos draws
	snap Source            // state at the last refill; logical state = snap advanced pos draws
	buf  [batchSize]uint64 //statecover:derived prefetch cache; restores zero pos/n so it refills before the next draw
	pos  int               // next unconsumed buffer slot
	n    int               // filled slots (0 before the first refill and after restores)
}

// NewBatch returns a buffered generator seeded like New(seed): it
// produces exactly New(seed)'s stream.
func NewBatch(seed uint64) *Batch {
	b := &Batch{}
	b.src = *New(seed)
	b.snap = b.src
	return b
}

// refill snapshots the current logical state and generates the next
// batchSize values.
func (b *Batch) refill() {
	b.snap = b.src
	for i := range b.buf {
		b.buf[i] = b.src.Uint64()
	}
	b.pos, b.n = 0, batchSize
}

// Uint64 returns the next 64 random bits of the underlying stream.
//
//semsim:hot
func (b *Batch) Uint64() uint64 {
	if b.pos == b.n {
		b.refill()
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
//
//semsim:hot
func (b *Batch) Float64() float64 {
	return float64(b.Uint64()>>11) * (1.0 / (1 << 53))
}

// Open returns a uniform float64 in the open interval (0, 1), matching
// Source.Open draw for draw.
//
//semsim:hot
func (b *Batch) Open() float64 {
	for {
		v := b.Float64()
		if v > 0 {
			return v
		}
	}
}

// Exp returns an exponentially distributed waiting time with the given
// total rate (Eq. 5: dt = -ln(r)/rate), matching Source.Exp draw for
// draw. It panics if rate <= 0.
//
//semsim:hot
func (b *Batch) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(b.Open()) / rate
}

// Intn returns a uniform integer in [0, n), matching Source.Intn draw
// for draw. It panics if n <= 0.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(b.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Reseed rewinds the batch onto the stream of NewBatch(seed),
// discarding any prefetched buffer: subsequent draws are bit-for-bit
// those of a freshly constructed batch with the same seed. It exists so
// a long-lived simulation session can restart on a new deterministic
// stream per sweep point without reallocating the generator.
func (b *Batch) Reseed(seed uint64) {
	b.src = *New(seed)
	b.snap = b.src
	b.pos, b.n = 0, 0
}

// MarshalBinary encodes the logical generator state — the Source state
// after exactly the consumed draws — in Source's 32-byte format, so
// Batch and Source snapshots are interchangeable. Replaying at most
// batchSize draws from the refill snapshot reconstructs it.
func (b *Batch) MarshalBinary() ([]byte, error) {
	logical := b.snap
	for i := 0; i < b.pos; i++ {
		logical.Uint64()
	}
	return logical.MarshalBinary()
}

// UnmarshalBinary restores a state produced by Source.MarshalBinary or
// Batch.MarshalBinary, discarding any prefetched buffer.
func (b *Batch) UnmarshalBinary(data []byte) error {
	if err := b.src.UnmarshalBinary(data); err != nil {
		return err
	}
	b.snap = b.src
	b.pos, b.n = 0, 0
	return nil
}

// MarshalBinary encodes the generator state (32 bytes, little endian),
// so long simulations can checkpoint and resume bit-exactly.
func (r *Source) MarshalBinary() ([]byte, error) {
	out := make([]byte, 32)
	for i, s := range r.s {
		binary.LittleEndian.PutUint64(out[8*i:], s)
	}
	return out, nil
}

// UnmarshalBinary restores a state produced by MarshalBinary.
func (r *Source) UnmarshalBinary(data []byte) error {
	if len(data) != 32 {
		return fmt.Errorf("rng: state must be 32 bytes, got %d", len(data))
	}
	var s [4]uint64
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("rng: all-zero state is invalid")
	}
	r.s = s
	return nil
}
