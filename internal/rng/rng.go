// Package rng provides a small, fast, deterministic pseudo-random
// number generator for the Monte Carlo solver.
//
// Reproducibility across runs and platforms is a hard requirement for
// the paper's experiments (propagation-delay errors are averaged over
// nine fixed seeds), so the simulator does not use math/rand's global
// state. The generator is xoshiro256**, seeded through splitmix64 as
// its authors recommend.
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is
// not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two sources built
// from the same seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// A pathological all-zero state cannot occur: splitmix64 output is a
	// bijection of its (distinct) inputs, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Open returns a uniform float64 in the open interval (0, 1). The Monte
// Carlo time step -ln(r)/Gamma (Eq. 5 of the paper) requires r > 0.
func (r *Source) Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Exp returns an exponentially distributed waiting time with the given
// total rate (Eq. 5: dt = -ln(r)/rate). It panics if rate <= 0 because
// a non-positive total rate means the caller selected an event from an
// empty distribution.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(r.Open()) / rate
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Split returns a new Source deterministically derived from this one
// (consuming one value from the parent stream). Useful for giving
// independent reproducible streams to parallel sweep points.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// MarshalBinary encodes the generator state (32 bytes, little endian),
// so long simulations can checkpoint and resume bit-exactly.
func (r *Source) MarshalBinary() ([]byte, error) {
	out := make([]byte, 32)
	for i, s := range r.s {
		binary.LittleEndian.PutUint64(out[8*i:], s)
	}
	return out, nil
}

// UnmarshalBinary restores a state produced by MarshalBinary.
func (r *Source) UnmarshalBinary(data []byte) error {
	if len(data) != 32 {
		return fmt.Errorf("rng: state must be 32 bytes, got %d", len(data))
	}
	var s [4]uint64
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("rng: all-zero state is invalid")
	}
	r.s = s
	return nil
}
