package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(123)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(99)
	const n = 200000
	const rate = 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.02 {
		t.Fatalf("mean waiting time %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("digit %d count %d far from uniform 10000", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children start identically")
	}
}

func TestIntnUnbiasedSmallRanges(t *testing.T) {
	// Property: for any seed and any n in [1, 64], Intn(n) stays in range.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenNeverZero(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		if r.Open() <= 0 {
			t.Fatal("Open returned non-positive value")
		}
	}
}
