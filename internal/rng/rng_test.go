package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(123)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(99)
	const n = 200000
	const rate = 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.02 {
		t.Fatalf("mean waiting time %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("digit %d count %d far from uniform 10000", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children start identically")
	}
}

func TestIntnUnbiasedSmallRanges(t *testing.T) {
	// Property: for any seed and any n in [1, 64], Intn(n) stays in range.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenNeverZero(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		if r.Open() <= 0 {
			t.Fatal("Open returned non-positive value")
		}
	}
}

// TestBatchMatchesSource is the bit-identity oracle for the buffered
// generator: a long interleaved sequence of every draw kind must equal
// the unbatched stream value for value. The interleaving crosses refill
// boundaries many times (each Exp consumes at least two raw values via
// Open/Float64, each Intn at least one), so buffer bookkeeping errors
// at the edges cannot hide.
func TestBatchMatchesSource(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		src, bat := New(seed), NewBatch(seed)
		for i := 0; i < 5000; i++ {
			switch i % 5 {
			case 0:
				if a, b := src.Uint64(), bat.Uint64(); a != b {
					t.Fatalf("seed %d step %d: Uint64 %d != %d", seed, i, a, b)
				}
			case 1:
				if a, b := src.Float64(), bat.Float64(); a != b {
					t.Fatalf("seed %d step %d: Float64 %v != %v", seed, i, a, b)
				}
			case 2:
				if a, b := src.Open(), bat.Open(); a != b {
					t.Fatalf("seed %d step %d: Open %v != %v", seed, i, a, b)
				}
			case 3:
				if a, b := src.Exp(3.0), bat.Exp(3.0); a != b {
					t.Fatalf("seed %d step %d: Exp %v != %v", seed, i, a, b)
				}
			case 4:
				if a, b := src.Intn(1000), bat.Intn(1000); a != b {
					t.Fatalf("seed %d step %d: Intn %d != %d", seed, i, a, b)
				}
			}
		}
	}
}

// TestBatchMarshalMidBuffer checks that a snapshot taken at an
// arbitrary point inside the prefetch buffer encodes the logical
// position — the state a plain Source would have after the same
// consumed draws — and that both a Source and a fresh Batch restored
// from it continue the stream bit-exactly.
func TestBatchMarshalMidBuffer(t *testing.T) {
	for _, consumed := range []int{0, 1, 100, batchSize - 1, batchSize, batchSize + 7, 3*batchSize + 13} {
		bat := NewBatch(77)
		ref := New(77)
		for i := 0; i < consumed; i++ {
			if bat.Uint64() != ref.Uint64() {
				t.Fatalf("streams diverged before snapshot at %d", i)
			}
		}
		blob, err := bat.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(want) {
			t.Fatalf("consumed=%d: batch snapshot differs from unbatched source snapshot", consumed)
		}

		var asSource Source
		if err := asSource.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		asBatch := NewBatch(0)
		if err := asBatch.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			live := bat.Uint64()
			if v := asSource.Uint64(); v != live {
				t.Fatalf("consumed=%d draw %d: restored Source %d != live batch %d", consumed, i, v, live)
			}
			if v := asBatch.Uint64(); v != live {
				t.Fatalf("consumed=%d draw %d: restored Batch %d != live batch %d", consumed, i, v, live)
			}
		}
	}
}

func TestBatchPanicsLikeSource(t *testing.T) {
	b := NewBatch(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Batch.Exp(0) did not panic")
			}
		}()
		b.Exp(0)
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("Batch.Intn(0) did not panic")
		}
	}()
	b.Intn(0)
}

func BenchmarkSourceFloat64(b *testing.B) {
	r := New(9)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkBatchFloat64(b *testing.B) {
	r := NewBatch(9)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
