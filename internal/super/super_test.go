package super

import (
	"math"
	"testing"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

func TestGapLimits(t *testing.T) {
	d0 := units.MeV(0.2)
	tc := 1.2
	if Gap(d0, tc, 0) != d0 {
		t.Fatal("Gap(0) != Delta0")
	}
	if Gap(d0, tc, tc) != 0 || Gap(d0, tc, 2*tc) != 0 {
		t.Fatal("Gap above Tc must vanish")
	}
	// Monotone decreasing.
	prev := d0
	for _, temp := range []float64{0.1, 0.3, 0.6, 0.9, 1.1} {
		g := Gap(d0, tc, temp)
		if g > prev {
			t.Fatalf("gap not monotone at T=%g", temp)
		}
		prev = g
	}
	// At T = Tc/2 the gap is still close to Delta0 (BCS flatness):
	// tanh(1.74) = 0.9402.
	if g := Gap(d0, tc, tc/2); math.Abs(g/d0-0.9402) > 0.01 {
		t.Fatalf("Gap(Tc/2)/Delta0 = %g, want ~0.94", g/d0)
	}
}

func TestGapAgainstSelfConsistentBCS(t *testing.T) {
	// The weak-coupling BCS gap equation in its cutoff-free form is
	//   ln(Delta0/Delta) = 2 * Int_0^inf f(sqrt(xi^2+Delta^2)) /
	//                       sqrt(xi^2+Delta^2) dxi
	// with f the Fermi function. Solve it numerically (Brent over the
	// quadrature) for a BCS-consistent pair Delta0 = 1.764 kB Tc and
	// check the tanh interpolation used by Gap against it.
	const tc = 1.2
	d0 := 1.764 * units.KB * tc
	exact := func(temp float64) float64 {
		kT := units.KB * temp
		resid := func(d float64) float64 {
			integrand := func(xi float64) float64 {
				e := math.Hypot(xi, d)
				return numeric.Fermi(e, kT) / e
			}
			// The Fermi factor kills the integrand beyond ~40 kT.
			hi := 40*kT + 10*d
			return math.Log(d0/d) - 2*numeric.Integrate(integrand, 0, hi, 1e-12)
		}
		// Bracket: resid(d0) <= 0 (gap cannot exceed Delta0),
		// resid(tiny) > 0 below Tc.
		return numeric.Brent(resid, 1e-6*d0, d0, 1e-9*d0)
	}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		temp := frac * tc
		want := exact(temp)
		got := Gap(d0, tc, temp)
		if math.Abs(got-want)/d0 > 0.03 {
			t.Fatalf("T/Tc=%.2f: interpolated gap %.4g vs self-consistent %.4g (>3%% of Delta0 off)",
				frac, got, want)
		}
	}
}

func TestReducedDOS(t *testing.T) {
	d := 1.0
	if ReducedDOS(0.5, d) != 0 || ReducedDOS(-0.99, d) != 0 {
		t.Fatal("DOS inside gap must vanish")
	}
	if ReducedDOS(1.0, d) != 0 {
		t.Fatal("DOS exactly at the edge is treated as gapped (integrable singularity)")
	}
	// Just above the edge it diverges; far above it approaches 1.
	if ReducedDOS(1.0001, d) < 50 {
		t.Fatalf("DOS near edge too small: %g", ReducedDOS(1.0001, d))
	}
	if math.Abs(ReducedDOS(100, d)-1) > 1e-4 {
		t.Fatalf("DOS far from gap: %g, want ~1", ReducedDOS(100, d))
	}
	// Symmetric in E.
	if ReducedDOS(-3, d) != ReducedDOS(3, d) {
		t.Fatal("DOS must be even in E")
	}
}

const (
	testR = 210e3 // paper Fig. 5 junction resistance
	testT = 0.05  // 50 mK: cold enough that thermal tails are tiny
	testD = 3.2e-23
)

func TestIqpOddAndZero(t *testing.T) {
	if Iqp(0, testR, testD, testD, testT) != 0 {
		t.Fatal("Iqp(0) must be zero")
	}
	v := 1.5 * 2 * testD / units.E
	ip := Iqp(v, testR, testD, testD, testT)
	im := Iqp(-v, testR, testD, testD, testT)
	if math.Abs(ip+im)/math.Abs(ip) > 1e-6 {
		t.Fatalf("Iqp not odd: %g vs %g", ip, im)
	}
}

func TestIqpGapOnsetStep(t *testing.T) {
	// At T ~ 0 and equal gaps the current is ~0 below 2*Delta/e and
	// jumps to pi*Delta/(2 e R) just above (Tinkham).
	d := testD
	vGap := 2 * d / units.E
	below := Iqp(0.9*vGap, testR, d, d, testT)
	above := Iqp(1.02*vGap, testR, d, d, testT)
	scale := d / (units.E * testR)
	if math.Abs(below) > 0.01*scale {
		t.Fatalf("sub-gap current too large at 50 mK: %g (scale %g)", below, scale)
	}
	step := above / scale
	if step < 1.3 || step > 1.9 {
		t.Fatalf("gap-edge step = %g * Delta/(eR), want ~pi/2 = 1.57", step)
	}
}

func TestIqpOhmicAsymptote(t *testing.T) {
	d := testD
	v := 40 * d / units.E
	got := Iqp(v, testR, d, d, testT)
	ohm := v / testR
	if math.Abs(got-ohm)/ohm > 0.05 {
		t.Fatalf("far above gap: I=%g, ohmic %g (should agree to 5%%)", got, ohm)
	}
}

func TestIqpNormalLimit(t *testing.T) {
	// Zero gaps must reduce to the ohmic junction at any T.
	v := 0.0005
	got := Iqp(v, testR, 0, 0, 4.2)
	want := v / testR
	if math.Abs(got-want)/want > 1e-4 {
		t.Fatalf("normal limit: got %g want %g", got, want)
	}
}

func TestIqpSingularityMatchingPeak(t *testing.T) {
	// With unequal gaps at finite T, thermally excited quasi-particles
	// produce a current peak at V = |d1-d2|/e that *decreases* with V
	// beyond it (negative differential conductance) — the signature
	// singularity-matching feature.
	d1 := testD
	d2 := 0.6 * testD
	temp := 0.35 // K: enough thermal excitation
	vMatch := (d1 - d2) / units.E
	iAt := Iqp(vMatch, testR, d1, d2, temp)
	iPast := Iqp(vMatch*1.6, testR, d1, d2, temp)
	if iAt <= 0 {
		t.Fatalf("no thermal current at matching point: %g", iAt)
	}
	if iPast >= iAt {
		t.Fatalf("no NDR past matching point: I(%g)=%g, I(%g)=%g",
			vMatch, iAt, 1.6*vMatch, iPast)
	}
}

func TestJosephsonEnergy(t *testing.T) {
	d := units.MeV(0.21)
	ej0 := JosephsonEnergy(210e3, d, 0)
	want := units.RQ / 210e3 * d / 2
	if math.Abs(ej0-want)/want > 1e-12 {
		t.Fatalf("EJ(T=0): got %g want %g", ej0, want)
	}
	// EJ decreases with temperature and vanishes with the gap.
	if JosephsonEnergy(210e3, d, 0.5) >= ej0 {
		t.Fatal("EJ must decrease with T")
	}
	if JosephsonEnergy(210e3, 0, 0.5) != 0 {
		t.Fatal("EJ without gap must vanish")
	}
	// Regime check for the paper's Fig. 5 device: EJ << Ec.
	ec := units.ChargingEnergy(234 * units.Atto)
	if ej0 > ec/3 {
		t.Fatalf("paper device not in EJ << Ec regime: EJ=%g Ec=%g", ej0, ec)
	}
}

func TestCooperPairRateLorentzian(t *testing.T) {
	ej := units.MeV(0.003)
	gamma := 1e9
	peak := CooperPairRate(0, ej, gamma)
	want := 2 * ej * ej / (units.Hbar * units.Hbar * gamma)
	if math.Abs(peak-want)/want > 1e-12 {
		t.Fatalf("on-resonance rate: got %g want %g", peak, want)
	}
	// Half maximum at dw = hbar*gamma/2.
	half := CooperPairRate(units.Hbar*gamma/2, ej, gamma)
	if math.Abs(half-peak/2)/peak > 1e-12 {
		t.Fatalf("half-width wrong: %g vs %g", half, peak/2)
	}
	// Symmetric.
	if CooperPairRate(1e-25, ej, gamma) != CooperPairRate(-1e-25, ej, gamma) {
		t.Fatal("CP rate must be even in dw")
	}
	if CooperPairRate(0, 0, gamma) != 0 || CooperPairRate(0, ej, 0) != 0 {
		t.Fatal("degenerate parameters must give zero rate")
	}
}

func TestQPTableMatchesDirectIntegral(t *testing.T) {
	d := testD
	tab, err := NewQPTable(testR, d, d, 0.3, 6*d/units.E)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.3, 0.8, 0.95, 1.05, 1.5, 2.5} {
		v := frac * 2 * d / units.E
		want := Iqp(v, testR, d, d, 0.3)
		got := tab.Current(v)
		scale := d / (units.E * testR)
		if math.Abs(got-want) > 0.02*scale+0.01*math.Abs(want) {
			t.Fatalf("table at V=%.3g*2D/e: got %g want %g", frac, got, want)
		}
	}
}

func TestQPTableRateDetailedBalance(t *testing.T) {
	d := testD
	temp := 0.3
	tab, err := NewQPTable(testR, d, d, temp, 8*d/units.E)
	if err != nil {
		t.Fatal(err)
	}
	kT := units.KB * temp
	for _, x := range []float64{0.5, 2, 5} {
		dw := x * kT
		fw := tab.Rate(-dw)
		bw := tab.Rate(dw)
		if fw <= 0 || bw <= 0 {
			t.Fatalf("rates should be positive at finite T: %g %g", fw, bw)
		}
		ratio := bw / fw
		want := math.Exp(-x)
		if math.Abs(ratio-want)/want > 0.02 {
			t.Fatalf("detailed balance x=%g: ratio %g want %g", x, ratio, want)
		}
	}
}

func TestQPTableRateAboveGap(t *testing.T) {
	// For |dW| well above 2*Delta the rate approaches the normal-state
	// orthodox rate |dW|/(e^2 R).
	d := testD
	tab, err := NewQPTable(testR, d, d, 0.1, 80*d/units.E)
	if err != nil {
		t.Fatal(err)
	}
	dw := -50 * d
	got := tab.Rate(dw)
	want := -dw / (units.E * units.E * testR)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("high-energy QP rate: got %g want %g", got, want)
	}
}

func TestQPTableSubGapSuppression(t *testing.T) {
	d := testD
	tab, err := NewQPTable(testR, d, d, 0.05, 8*d/units.E)
	if err != nil {
		t.Fatal(err)
	}
	sub := tab.Rate(-d)       // |dW| = Delta: deep sub-gap
	above := tab.Rate(-3 * d) // above 2*Delta
	if sub > 1e-6*above {
		t.Fatalf("sub-gap QP rate not suppressed: %g vs %g above gap", sub, above)
	}
}

func TestQPTableRejectsZeroTemperature(t *testing.T) {
	if _, err := NewQPTable(testR, testD, testD, 0, 1); err == nil {
		t.Fatal("QPTable must reject T = 0")
	}
	if _, err := NewQPTable(-1, testD, testD, 0.1, 1); err == nil {
		t.Fatal("QPTable must reject R <= 0")
	}
}

func BenchmarkIqpDirect(b *testing.B) {
	d := testD
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Iqp(2.5*d/units.E, testR, d, d, 0.3)
	}
}

func BenchmarkQPTableRate(b *testing.B) {
	d := testD
	tab, err := NewQPTable(testR, d, d, 0.3, 8*d/units.E)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Rate(-2.2 * d * float64(i%5+1) / 3)
	}
}
