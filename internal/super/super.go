// Package super implements the superconducting-state physics of the
// simulator: the BCS gap, quasi-particle tunneling through the singular
// BCS density of states (Eq. 3 of the paper), the Josephson coupling
// energy, and incoherent resonant Cooper-pair tunneling in the
// high-resistance regime (RN >> RQ, EJ << Ec). Together these produce
// the JQP and DJQP resonances and the thermal singularity-matching
// features of superconducting SETs.
package super

import (
	"fmt"
	"math"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Gap returns the BCS gap Delta(T) in joules using the standard
// interpolation formula
//
//	Delta(T) = Delta(0) * tanh(1.74 * sqrt(Tc/T - 1))
//
// which tracks the self-consistent BCS gap equation to within ~2%
// across the whole range and has the exact limits Delta(0) at T=0 and
// 0 at T >= Tc.
func Gap(delta0, tc, t float64) float64 {
	if t <= 0 {
		return delta0
	}
	if t >= tc {
		return 0
	}
	return delta0 * math.Tanh(1.74*math.Sqrt(tc/t-1))
}

// ReducedDOS is the BCS reduced density of states (Eq. 4 of the paper):
// |E|/sqrt(E^2 - Delta^2) for |E| > Delta, zero inside the gap.
func ReducedDOS(e, delta float64) float64 {
	ae := math.Abs(e)
	if ae <= delta {
		return 0
	}
	return ae / math.Sqrt(e*e-delta*delta)
}

// Iqp computes the quasi-particle tunneling current (amperes) of a
// junction with normal-state resistance r, gaps d1 and d2 (joules) on
// its two electrodes, at voltage v and temperature t (kelvin), by
// direct evaluation of Eq. 3:
//
//	Iqp = 1/(e R) Int n1(E) n2(E + eV) [f(E) - f(E + eV)] dE
//
// The integrand has inverse-square-root singularities at E = ±d1 and
// E = -eV ± d2; the domain is split at every singular point and each
// piece is integrated with the edge-regularizing substitution.
func Iqp(v, r, d1, d2, t float64) float64 {
	if v == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	kT := units.KB * t
	ev := units.E * v
	f := func(e float64) float64 { return numeric.Fermi(e, kT) }
	integrand := func(e float64) float64 {
		n1 := ReducedDOS(e, d1)
		if n1 == 0 {
			return 0
		}
		n2 := ReducedDOS(e+ev, d2)
		if n2 == 0 {
			return 0
		}
		df := f(e) - f(e+ev)
		if df == 0 {
			return 0
		}
		return n1 * n2 * df
	}
	// The thermal factor f(E) - f(E+eV) is nonzero only within ~40 kT of
	// the window [min(0,-eV), max(0,-eV)]; outside it the integrand
	// vanishes regardless of the DOS.
	margin := 40 * kT
	lo := math.Min(0, -ev) - margin
	hi := math.Max(0, -ev) + margin
	// Breakpoints: gap edges of both electrodes (electrode 2 shifted by
	// -eV) plus the Fermi window edges 0 and -eV. Only the gap edges are
	// singular points.
	edges := []float64{-d1, d1, -ev - d2, -ev + d2}
	bps := append([]float64{0, -ev}, edges...)
	pts := []float64{lo}
	for _, b := range bps {
		if b > lo && b < hi {
			pts = append(pts, b)
		}
	}
	pts = append(pts, hi)
	sortFloats(pts)
	isEdge := func(x float64) bool {
		for _, e := range edges {
			if numeric.SameBits(x, e) {
				return true
			}
		}
		return false
	}
	tol := 1e-6 * (d1 + d2 + math.Abs(ev) + kT)
	total := 0.0
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		if b-a < 1e-30 {
			continue
		}
		m := 0.5 * (a + b)
		// Skip intervals lying entirely inside either gap: the DOS (and
		// hence the integrand) is identically zero there.
		if math.Abs(m) < d1 || math.Abs(m+ev) < d2 {
			continue
		}
		singA, singB := isEdge(a), isEdge(b)
		switch {
		case singA && singB:
			total += numeric.IntegrateBothEdgesSingular(integrand, a, b, tol)
		case singA:
			total += numeric.IntegrateEdgeSingular(integrand, a, b, true, tol)
		case singB:
			total += numeric.IntegrateEdgeSingular(integrand, a, b, false, tol)
		default:
			total += numeric.Integrate(integrand, a, b, tol)
		}
	}
	return total / (units.E * r)
}

func sortFloats(x []float64) {
	// Insertion sort: the slice has < 10 elements.
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// JosephsonEnergy returns the Ambegaokar–Baratoff Josephson coupling
// energy (joules) of a junction with normal resistance r and gap delta
// at temperature t:
//
//	EJ = (RQ / R) * (Delta/2) * tanh(Delta / 2 kT)
//
// with RQ = h/4e^2. In the paper's regime RN >> RQ this is much smaller
// than the charging energy, as Cooper-pair tunneling theory requires.
func JosephsonEnergy(r, delta, t float64) float64 {
	if delta <= 0 {
		return 0
	}
	th := 1.0
	if t > 0 {
		th = math.Tanh(delta / (2 * units.KB * t))
	}
	return units.RQ / r * delta / 2 * th
}

// CooperPairRate returns the incoherent resonant Cooper-pair tunneling
// rate (1/s) for a pair free-energy change dw (joules), Josephson
// energy ej (joules) and lifetime broadening gamma (1/s) of the
// resonance — normally the quasi-particle escape rate that completes
// the JQP cycle:
//
//	Gamma_2e(dw) = (EJ^2 / 2) * gamma / (dw^2 + (hbar*gamma/2)^2) / hbar^2-normalized
//
// written so that on resonance Gamma_2e(0) = 2 EJ^2 / (hbar^2 gamma),
// the standard JQP-cycle result.
func CooperPairRate(dw, ej, gamma float64) float64 {
	if ej <= 0 || gamma <= 0 {
		return 0
	}
	hg := units.Hbar * gamma / 2
	return ej * ej / 2 * gamma / (dw*dw + hg*hg)
}

// QPTable caches Iqp(V) for one junction (one combination of R, gaps
// and temperature) on a feature-adapted grid with PCHIP interpolation,
// so the Monte Carlo inner loop never integrates. The table also
// converts currents to tunneling rates via the detailed-balance
// identity
//
//	Gamma(dW) = Iqp(-dW/e) / (e * (1 - exp(dW/kT)))
//
// which reduces exactly to Eq. 1's form and guarantees
// Gamma(dW)/Gamma(-dW) = exp(-dW/kT).
type QPTable struct {
	r, d1, d2, temp, kT float64
	tab                 *numeric.Table
	g0                  float64 // zero-bias conductance dI/dV|0 (siemens)
	vSmall              float64
}

// NewQPTable builds the cache covering |V| <= vmax. Temperature must be
// positive: the detailed-balance conversion (and all the paper's
// superconducting experiments) assume finite temperature.
func NewQPTable(r, d1, d2, t, vmax float64) (*QPTable, error) {
	if t <= 0 {
		return nil, fmt.Errorf("super: QPTable needs T > 0, got %g", t)
	}
	if r <= 0 || d1 < 0 || d2 < 0 {
		return nil, fmt.Errorf("super: QPTable needs R > 0 and gaps >= 0")
	}
	vOnset := (d1 + d2) / units.E
	vMatch := math.Abs(d1-d2) / units.E
	if vmax < 2*vOnset {
		vmax = 2 * vOnset
	}
	kT := units.KB * t
	vt := kT / units.E

	// Feature-adapted grid: coarse background, dense near the gap-sum
	// onset, the singularity-matching point and zero bias.
	var grid []float64
	grid = append(grid, numeric.Linspace(0, vmax, 400)...)
	span := 0.25 * vOnset
	grid = append(grid, numeric.Linspace(math.Max(0, vOnset-span), math.Min(vmax, vOnset+span), 240)...)
	if vMatch > 0 {
		grid = append(grid, numeric.Linspace(math.Max(0, vMatch-0.2*vOnset), math.Min(vmax, vMatch+0.2*vOnset), 160)...)
	}
	grid = append(grid, numeric.Linspace(0, math.Min(vmax, 10*vt), 80)...)
	// Shared table machinery: sort, dedupe with a separation floor so
	// PCHIP stays well conditioned, evaluate, build.
	tab, err := numeric.TabulateGrid(grid, vmax*1e-9, func(v float64) float64 {
		return Iqp(v, r, d1, d2, t)
	})
	if err != nil {
		return nil, fmt.Errorf("super: building QP table: %w", err)
	}
	q := &QPTable{r: r, d1: d1, d2: d2, temp: t, kT: kT, tab: tab}
	// Zero-bias conductance by central difference at half a thermal volt.
	dv := 0.5 * vt
	q.g0 = (q.Current(dv) - q.Current(-dv)) / (2 * dv)
	if q.g0 < 0 {
		q.g0 = 0
	}
	q.vSmall = 1e-4 * vt
	return q, nil
}

// Current returns the interpolated quasi-particle current at voltage v,
// using the odd symmetry Iqp(-V) = -Iqp(V).
func (q *QPTable) Current(v float64) float64 {
	if v < 0 {
		return -q.tab.Eval(-v)
	}
	return q.tab.Eval(v)
}

// Rate returns the quasi-particle tunneling rate for free-energy change
// dw (joules).
func (q *QPTable) Rate(dw float64) float64 {
	v := -dw / units.E
	var g float64
	if math.Abs(v) < q.vSmall {
		g = q.g0
	} else {
		g = q.Current(v) / v
	}
	if g < 0 {
		g = 0 // interpolation noise guard; I(v)/v is physically >= 0
	}
	return g / (units.E * units.E) * q.kT * numeric.XOverExpm1(dw/q.kT)
}

// Vmax reports the tabulated voltage range (beyond it the table
// extrapolates linearly, which matches the ohmic asymptote).
func (q *QPTable) Vmax() float64 { return q.tab.Max() }
