package orthodox

import (
	"math"
	"testing"

	"semsim/internal/rng"
	"semsim/internal/units"
)

// TestKernelAccuracy asserts the solver's documented bound: tabulated
// rates within 1e-6 relative error of exact evaluation, across the
// physical temperature range and both inside and outside the tabulated
// band of x = dW/kT. The lower tail evaluates the ohmic asymptote -x
// (error ~e^-60, far under the bound); the upper tail truncates to
// zero, so there the test asserts the exact rate it discards is below
// the truncation floor e^-KernelXMax of the thermal scale kT/(e^2 R).
func TestKernelAccuracy(t *testing.T) {
	k := SharedKernel()
	if k == nil {
		t.Fatal("shared kernel failed to build")
	}
	if k.MaxRelError() > KernelRelTol {
		t.Fatalf("kernel reports error bound %g, want <= %g", k.MaxRelError(), KernelRelTol)
	}
	r := rng.New(4)
	temps := []float64{0.05, 2, 77, 300}
	const resistance = 1e6
	for _, temp := range temps {
		kT := units.KB * temp
		for i := 0; i < 5000; i++ {
			x := (r.Float64()*2 - 1) * 80 // spans the band edge at +-60
			dw := x * kT
			exact := Rate(dw, resistance, temp)
			got := k.Rate(dw, resistance, temp)
			if x > KernelXMax {
				thermal := kT / (units.E * units.E * resistance)
				if got != 0 {
					t.Fatalf("T=%g x=%g: truncated tail must give 0, got %g", temp, x, got)
				}
				if floor := thermal * (x + 1) * math.Exp(-KernelXMax); exact > floor {
					t.Fatalf("T=%g x=%g: exact rate %g above truncation floor %g", temp, x, exact, floor)
				}
				continue
			}
			if exact == 0 {
				if got != 0 {
					t.Fatalf("T=%g x=%g: exact 0 but table %g", temp, x, got)
				}
				continue
			}
			if rel := math.Abs(got-exact) / math.Abs(exact); rel > 1e-6 {
				t.Fatalf("T=%g x=%g: table %g vs exact %g, rel err %g > 1e-6", temp, x, got, exact, rel)
			}
		}
	}
}

// TestKernelZeroTemperatureExact: the T <= 0 limit must bypass the table
// entirely.
func TestKernelZeroTemperatureExact(t *testing.T) {
	k := SharedKernel()
	if k == nil {
		t.Fatal("shared kernel failed to build")
	}
	for _, dw := range []float64{-3e-22, -1e-25, 0, 1e-25, 3e-22} {
		if got, want := k.Rate(dw, 1e6, 0), Rate(dw, 1e6, 0); got != want {
			t.Fatalf("dw=%g: T=0 table rate %g != exact %g", dw, got, want)
		}
	}
}

var sinkRate float64

// The pair below is the tentpole's table-vs-exp microbenchmark: the same
// spread of dW values through the exact exp-based rate and the shared
// kernel.
func benchmarkRate(b *testing.B, f func(dw float64) float64) {
	const temp = 2.0
	kT := units.KB * temp
	dws := make([]float64, 1024)
	r := rng.New(8)
	for i := range dws {
		dws[i] = (r.Float64()*2 - 1) * 40 * kT
	}
	b.ResetTimer()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += f(dws[i&1023])
	}
	sinkRate = acc
}

func BenchmarkOrthodoxRateExact(b *testing.B) {
	benchmarkRate(b, func(dw float64) float64 { return Rate(dw, 1e6, 2.0) })
}

func BenchmarkOrthodoxRateTable(b *testing.B) {
	k := SharedKernel()
	if k == nil {
		b.Fatal("shared kernel failed to build")
	}
	benchmarkRate(b, func(dw float64) float64 { return k.Rate(dw, 1e6, 2.0) })
}
