// Package orthodox implements the orthodox-theory single-electron
// tunneling rate (Eq. 1 of the paper with the normal-state I-V
// function I(V) = V/R):
//
//	Gamma(dW) = dW / (e^2 R (exp(dW/kT) - 1))
//
// where dW is the free-energy change of the event (negative when the
// event releases energy). The zero-temperature limit is
// Gamma = -dW/(e^2 R) for dW < 0 and 0 otherwise; at dW -> 0 the rate
// approaches kT/(e^2 R). Both limits are handled without loss of
// precision.
package orthodox

import (
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// Rate returns the tunneling rate (events per second) through a
// junction of resistance r (ohms) at temperature t (kelvin) for a
// free-energy change dw (joules).
func Rate(dw, r, t float64) float64 {
	denom := units.E * units.E * r
	if t <= 0 {
		if dw < 0 {
			return -dw / denom
		}
		return 0
	}
	kT := units.KB * t
	return kT * numeric.XOverExpm1(dw/kT) / denom
}

// Conductance returns the linear-response (dw -> 0) rate prefactor
// kT/(e^2 R): the rate at which a junction shuttles electrons when an
// event costs no energy. Useful as a scale for thresholds.
func Conductance(r, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return units.KB * t / (units.E * units.E * r)
}
