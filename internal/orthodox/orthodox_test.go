package orthodox

import (
	"math"
	"testing"
	"testing/quick"

	"semsim/internal/units"
)

func TestZeroTemperatureLimit(t *testing.T) {
	r := 1e6
	dw := -1e-21
	got := Rate(dw, r, 0)
	want := 1e-21 / (units.E * units.E * r)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("T=0 favorable rate: got %g want %g", got, want)
	}
	if Rate(1e-21, r, 0) != 0 {
		t.Fatal("T=0 unfavorable rate must be exactly zero")
	}
	if Rate(0, r, 0) != 0 {
		t.Fatal("T=0 zero-energy rate must be zero")
	}
}

func TestLowTemperatureApproachesT0(t *testing.T) {
	r := 1e6
	dw := -5e-21 // strongly favorable vs kT at 10 mK (~1.4e-25 J)
	cold := Rate(dw, r, 0.01)
	zero := Rate(dw, r, 0)
	if math.Abs(cold-zero)/zero > 1e-10 {
		t.Fatalf("10 mK rate %g differs from T=0 rate %g", cold, zero)
	}
}

func TestZeroEnergyRate(t *testing.T) {
	// Gamma(0) = kT/(e^2 R).
	r, temp := 1e6, 4.2
	got := Rate(0, r, temp)
	want := units.KB * temp / (units.E * units.E * r)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Gamma(0): got %g want %g", got, want)
	}
	if c := Conductance(r, temp); math.Abs(c-want)/want > 1e-12 {
		t.Fatalf("Conductance: got %g want %g", c, want)
	}
}

func TestDetailedBalance(t *testing.T) {
	// Gamma(dW)/Gamma(-dW) = exp(-dW/kT): thermal equilibrium requires it.
	r, temp := 2e6, 1.3
	kT := units.KB * temp
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		dw := x * kT
		ratio := Rate(dw, r, temp) / Rate(-dw, r, temp)
		want := math.Exp(-x)
		if math.Abs(ratio-want)/want > 1e-9 {
			t.Fatalf("detailed balance at x=%g: ratio %g want %g", x, ratio, want)
		}
	}
}

func TestRateAlwaysNonNegative(t *testing.T) {
	f := func(dwScale, tScale float64) bool {
		dw := math.Mod(dwScale, 100) * 1e-22
		temp := math.Abs(math.Mod(tScale, 300))
		return Rate(dw, 1e6, temp) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRateScalesInverselyWithResistance(t *testing.T) {
	dw, temp := -3e-21, 4.2
	r1 := Rate(dw, 1e6, temp)
	r2 := Rate(dw, 2e6, temp)
	if math.Abs(r1-2*r2)/r1 > 1e-12 {
		t.Fatalf("rate not ~ 1/R: %g vs %g", r1, 2*r2)
	}
}

func TestHighTemperatureOhmicLimit(t *testing.T) {
	// For |dW| << kT the junction is ohmic: current e*(Gfwd - Gbwd)
	// equals V/R with V = -dW/e.
	r, temp := 1e6, 300.0
	dw := -1e-24 // tiny vs kT(300K) ~ 4e-21
	net := Rate(dw, r, temp) - Rate(-dw, r, temp)
	wantNet := -dw / (units.E * units.E * r)
	if math.Abs(net-wantNet)/wantNet > 1e-6 {
		t.Fatalf("ohmic limit: net %g want %g", net, wantNet)
	}
}

func BenchmarkRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rate(-1e-21*float64(i%7+1), 1e6, 4.2)
	}
}
