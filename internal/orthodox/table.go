package orthodox

import (
	"sync"

	"semsim/internal/numeric"
	"semsim/internal/units"
)

// The normal-state orthodox rate factors into a junction-independent
// dimensionless kernel and an exact prefactor:
//
//	Gamma(dW) = kT/(e^2 R) * g(dW/kT),   g(x) = x/(exp(x) - 1)
//
// so one tabulation of g serves every junction at every temperature —
// unlike the superconducting quasi-particle table, which depends on
// (R, gaps, T) and is cached per junction. The kernel is built once per
// process with a measured relative-error bound; outside the tabulated
// band |x| <= KernelXMax it evaluates the asymptotic tails — see
// KernelXMax — and the T <= 0 limit is always computed exactly.
const (
	// KernelXMax bounds the tabulated band of x = dW/kT. The tails are
	// evaluated by their asymptotic expansions, which cost the same
	// multiply-adds as the band instead of an exp (at logic-circuit
	// energies |dW/kT| reaches hundreds, so the tails ARE the hot path):
	// below -60 the kernel is ohmic, g(x) = -x, exact to one part in
	// e^60 ~ 1e26; above +60 the rate has decayed by e^-60 below the
	// thermal scale kT/(e^2 R) — deep forbidden regime, over a dozen
	// decades below double precision of any competing rate sum — and
	// truncates to zero.
	KernelXMax = 60.0
	// KernelRelTol is the grid-refinement target for the kernel's
	// relative interpolation error, an order of magnitude tighter than
	// the 1e-6 bound the solver documents.
	KernelRelTol = 1e-7
)

// Kernel is the tabulated normal-state rate kernel. It evaluates
// through a numeric.FlatKernel — uniform grid, constant-time panel
// lookup — so a tabulated rate costs a handful of multiply-adds instead
// of a binary search plus an exp.
type Kernel struct {
	k *numeric.FlatKernel
}

var (
	kernelOnce sync.Once
	kernel     *Kernel
)

// SharedKernel returns the process-wide tabulated kernel, building it
// on first use (a few thousand exp evaluations). It returns nil if the
// refinement cannot reach KernelRelTol — callers must then use the
// exact Rate.
func SharedKernel() *Kernel {
	kernelOnce.Do(func() {
		k, err := numeric.NewFlatKernel(numeric.XOverExpm1, -KernelXMax, KernelXMax, KernelRelTol)
		if err != nil || k.MaxRelError() > KernelRelTol {
			return
		}
		// Asymptotic tails (see KernelXMax): g(x) = -x below the band,
		// 0 above it.
		k.WithTails([4]float64{0, -1, 0, 0}, [4]float64{})
		kernel = &Kernel{k: k}
	})
	return kernel
}

// G evaluates the dimensionless kernel g(x) = x/(exp(x)-1), interpolated
// inside |x| <= KernelXMax and asymptotic outside (-x below, 0 above).
func (k *Kernel) G(x float64) float64 { return k.k.Eval(x) }

// Flat exposes the underlying constant-time kernel so the solver's
// monomorphic inner loops can evaluate it without an extra call frame.
func (k *Kernel) Flat() *numeric.FlatKernel { return k.k }

// Rate is the tabulated counterpart of Rate: identical arguments and
// semantics, relative error bounded by KernelRelTol (the prefactor and
// both fallback paths are exact).
func (k *Kernel) Rate(dw, r, t float64) float64 {
	if t <= 0 {
		return Rate(dw, r, t)
	}
	kT := units.KB * t
	return kT / (units.E * units.E * r) * k.k.Eval(dw/kT)
}

// MaxRelError reports the measured interpolation-error bound of the
// tabulated band.
func (k *Kernel) MaxRelError() float64 { return k.k.MaxRelError() }
