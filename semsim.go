// Package semsim is a single-electron device and circuit simulator — a
// from-scratch reproduction of "Adaptive Simulation for Single-Electron
// Devices" (Allec, Knobel, Shang; DATE 2008).
//
// The simulator models single-electron tunneling with the orthodox
// theory, second-order inelastic cotunneling, and superconducting
// effects (quasi-particle tunneling through the BCS density of states
// and resonant Cooper-pair tunneling, which produce JQP/DJQP peaks and
// singularity-matching features). Circuits are simulated by a Monte
// Carlo event loop with two interchangeable solvers:
//
//   - the conventional non-adaptive solver recomputes every node
//     potential and junction rate after each tunnel event;
//   - the adaptive solver (the paper's contribution) tracks a
//     per-junction testing factor and recomputes only the rates that
//     changed significantly, spilling breadth-first to neighbours, with
//     a periodic full refresh to bound the error — up to ~40x faster on
//     large circuits at a few percent accuracy cost.
//
// Quick start — the paper's Fig. 1 SET:
//
//	c, nd := semsim.NewSET(semsim.SETConfig{
//	    R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18,
//	    Vs: 0.02, Vd: -0.02, Vg: 0,
//	})
//	sim, _ := semsim.NewSim(c, semsim.Options{Temp: 5})
//	sim.Run(100000, 0)
//	fmt.Println(sim.JunctionCurrent(nd.JuncDrain))
//
// Higher-level entry points: ParseNetlist reads the SPICE-like input
// deck format; ParseLogic and ExpandLogic turn gate-level netlists into
// nSET/pSET circuits; IV and Map2D sweep bias/gate planes in parallel;
// MasterSolve provides an exact steady-state reference for single
// devices; NewSpice is the compact-model transient baseline; and
// Benchmarks returns the paper's 15-circuit evaluation suite.
package semsim

import (
	"io"

	"semsim/internal/circuit"
	"semsim/internal/master"
	"semsim/internal/obs"
	"semsim/internal/solver"
	"semsim/internal/sweep"
	"semsim/internal/trace"
	"semsim/internal/units"
)

// Physical constants re-exported for building circuits in natural
// units.
const (
	// E is the elementary charge in coulombs.
	E = units.E
	// KB is Boltzmann's constant in joules per kelvin.
	KB = units.KB
	// RQ is the superconducting resistance quantum h/4e^2 (~6.45 kOhm).
	RQ = units.RQ
)

// MeV converts an energy in milli-electron-volts to joules (the
// natural unit for superconducting gaps).
func MeV(e float64) float64 { return units.MeV(e) }

// Circuit is a single-electron circuit: islands and leads connected by
// tunnel junctions and capacitors.
type Circuit = circuit.Circuit

// NodeKind classifies nodes as islands or externally driven leads.
type NodeKind = circuit.NodeKind

// Node kinds.
const (
	Island   = circuit.Island
	External = circuit.External
)

// Source variants for external nodes.
type (
	// Source supplies an external node's voltage over time.
	Source = circuit.Source
	// DC is a constant source.
	DC = circuit.DC
	// Sine is a sinusoidal source.
	Sine = circuit.Sine
	// PWL is a piecewise-linear source.
	PWL = circuit.PWL
)

// Junction is a tunnel junction (R, C) between two nodes.
type Junction = circuit.Junction

// SuperParams marks a circuit superconducting: gap Delta(0) in joules
// and critical temperature in kelvin.
type SuperParams = circuit.SuperParams

// SETConfig describes a single-electron transistor for NewSET.
type SETConfig = circuit.SETConfig

// SETNodes reports the node/junction ids of a NewSET circuit.
type SETNodes = circuit.SETNodes

// NewCircuit returns an empty circuit; add nodes, junctions, capacitors
// and sources, then call Build.
func NewCircuit() *Circuit { return circuit.New() }

// BuildOptions selects the potential backend assembled by
// Circuit.BuildWith: the dense inverse (zero value) or the sparse
// locality-aware engine, optionally with epsilon-truncated C^-1 rows.
type BuildOptions = circuit.BuildOptions

// NewSET builds a standalone single-electron transistor (Fig. 1a).
func NewSET(cfg SETConfig) (*Circuit, SETNodes) { return circuit.NewSET(cfg) }

// Options configures a Monte Carlo simulation.
type Options = solver.Options

// Sim is a Monte Carlo simulation of one circuit.
type Sim = solver.Sim

// Stats reports solver work counters (events, rate calculations, ...).
type Stats = solver.Stats

// Sample is a waveform point recorded by a probe.
type Sample = solver.Sample

// SimCheckpoint is a JSON-serializable resumable snapshot of a
// simulation (see Sim.Checkpoint / Sim.Restore): long Monte Carlo runs
// can persist their state and continue bit-exactly later.
type SimCheckpoint = solver.Checkpoint

// ErrBlockaded is returned when no tunnel event is possible and no
// input change can unblock the circuit (hard Coulomb blockade at T=0).
var ErrBlockaded = solver.ErrBlockaded

// NewSim prepares a Monte Carlo simulation of a built circuit.
func NewSim(c *Circuit, opt Options) (*Sim, error) { return solver.New(c, opt) }

// MasterResult is the steady-state master-equation solution for a
// single-island circuit.
type MasterResult = master.Result

// MasterSolve computes the exact stationary state of a single-island
// circuit: charge-state probabilities and junction currents. It is the
// validation reference for the Monte Carlo engine.
func MasterSolve(c *Circuit, temp float64, nmin, nmax int) (*MasterResult, error) {
	return master.Solve(c, temp, nmin, nmax)
}

// MasterResultN is the stationary solution for a multi-island circuit.
type MasterResultN = master.ResultN

// MasterSolveN solves the master equation of a normal-state circuit
// with any number of islands over a truncated occupation box of
// +-radius electrons per island. The state count grows exponentially
// with the island count — the method's inherent limitation, and the
// reason Monte Carlo is the tool for large circuits.
func MasterSolveN(c *Circuit, temp float64, radius int) (*MasterResultN, error) {
	return master.SolveN(c, temp, radius)
}

// Sweep types: IV curves and 2-D stability maps.
type (
	// SweepPoint is one I-V sample.
	SweepPoint = sweep.Point
	// SweepConfig tunes per-point Monte Carlo runs.
	SweepConfig = sweep.Config
	// BuildFunc makes a circuit for a sweep value and names the
	// measured junction.
	BuildFunc = sweep.BuildFunc
	// Build2DFunc makes a circuit for a grid point.
	Build2DFunc = sweep.Build2DFunc
)

// IV sweeps a 1-D family of operating points in parallel (Fig. 1b/1c).
func IV(build BuildFunc, xs []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return sweep.IV(build, xs, cfg)
}

// Map2D computes a current map over a (x, y) grid (Fig. 5).
func Map2D(build Build2DFunc, xs, ys []float64, cfg SweepConfig) ([][]float64, error) {
	return sweep.Map2D(build, xs, ys, cfg)
}

// Compile-once sweep sessions and adaptive mesh refinement: each worker
// builds one simulator and re-seeds it per point (bit-identical to
// rebuilding), and stability maps refine the grid only where the
// current shows contrast. See DESIGN.md §14.
type (
	// SweepSession is a reusable compiled circuit + solver for many
	// operating points.
	SweepSession = sweep.Session
	// SweepSessionFunc builds one session per sweep worker.
	SweepSessionFunc = sweep.SessionFunc
	// SweepOverrideFunc maps a sweep coordinate to per-node DC overrides.
	SweepOverrideFunc = sweep.OverrideFunc
	// RefineConfig tunes adaptive mesh refinement (depth, threshold, cap).
	RefineConfig = sweep.RefineConfig
	// RefinedMap is an adaptively refined stability map on the fine
	// lattice, with its simulated-point mask.
	RefinedMap = sweep.RefinedMap
)

// NewSweepSession compiles a circuit once for reuse across many sweep
// points; junc is the circuit junction to measure and over maps each
// (x, y) coordinate to DC source overrides (circuit node -> volts).
func NewSweepSession(base *Circuit, junc int, over SweepOverrideFunc, cfg SweepConfig) (*SweepSession, error) {
	return sweep.NewSession(base, junc, over, cfg)
}

// IVSession is IV with compile-once solver reuse per worker.
func IVSession(newSession SweepSessionFunc, xs []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return sweep.IVSession(newSession, xs, cfg)
}

// Map2DSession is Map2D with compile-once solver reuse per worker.
func Map2DSession(newSession SweepSessionFunc, xs, ys []float64, cfg SweepConfig) ([][]float64, error) {
	return sweep.Map2DSession(newSession, xs, ys, cfg)
}

// Map2DRefined computes a stability map with compile-once reuse and
// adaptive mesh refinement: the coarse xs×ys grid everywhere, fine
// points only where neighbouring currents disagree. Simulated points
// are bit-identical to a uniform fine map's, at any worker count.
func Map2DRefined(newSession SweepSessionFunc, xs, ys []float64, cfg SweepConfig, rc RefineConfig) (*RefinedMap, error) {
	return sweep.Map2DRefined(newSession, xs, ys, cfg, rc)
}

// RefineAxis subdivides each interval of vs into 2^depth equal steps —
// the fine lattice a RefinedMap lives on.
func RefineAxis(vs []float64, depth int) []float64 { return sweep.RefineAxis(vs, depth) }

// Observability: a metrics registry, a structured run journal with
// Chrome trace_event export, phase spans and an optional live HTTP
// endpoint (metrics + pprof). Observation is passive — instrumented
// runs are bit-identical to uninstrumented ones — and free when off.
type (
	// Observer collects metrics and (optionally) a trace journal from
	// every simulation it is attached to. A nil Observer is valid and
	// disables all observation at zero cost.
	Observer = obs.Observer
	// ObsConfig selects an Observer's features; the zero value enables
	// metrics only.
	ObsConfig = obs.Config
	// ObsServer is a live observability HTTP endpoint.
	ObsServer = obs.Server
)

// NewObserver creates an observability handle. Attach it to a
// simulation via Options.Obs, or install it process-wide with
// SetGlobalObserver so every simulation, sweep and master solve
// reports to it.
func NewObserver(cfg ObsConfig) *Observer { return obs.New(cfg) }

// SetGlobalObserver installs (or, with nil, removes) the process-wide
// observer that simulations without an explicit Options.Obs report to.
func SetGlobalObserver(o *Observer) { obs.SetGlobal(o) }

// GlobalObserver returns the installed process-wide observer, or nil.
func GlobalObserver() *Observer { return obs.Global() }

// ServeObs starts a live observability HTTP endpoint for o on addr
// (":0" picks a free port): /metrics, /trace, /heatmap and
// /debug/pprof/ for profiling long runs.
func ServeObs(addr string, o *Observer) (*ObsServer, error) { return obs.Serve(addr, o) }

// Waveform post-processing.
var (
	// ErrNoCrossing reports that a waveform never crossed the threshold.
	ErrNoCrossing = trace.ErrNoCrossing
)

// SmoothWaveform applies a causal moving average over the given window.
func SmoothWaveform(w []Sample, window float64) []Sample { return trace.Smooth(w, window) }

// VCDSignal names a waveform for WriteVCD export.
type VCDSignal = trace.VCDSignal

// WriteVCD exports waveforms as a Value Change Dump so Monte Carlo
// traces open in ordinary digital waveform viewers (each signal gets an
// analog real plus a thresholded logic wire).
func WriteVCD(w io.Writer, module string, signals []VCDSignal) error {
	return trace.WriteVCD(w, module, signals)
}

// PropagationDelay extracts the 50%-swing delay from an input step at
// stepTime to the (smoothed) output threshold crossing.
func PropagationDelay(w []Sample, stepTime, threshold, smoothWindow float64, rising bool) (float64, error) {
	return trace.PropagationDelay(w, stepTime, threshold, smoothWindow, rising)
}
