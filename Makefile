# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench experiments quick-experiments fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

# One testing.B benchmark per paper figure, plus ablations and
# per-package microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every figure of the paper into ./results (see
# EXPERIMENTS.md). The full run takes hours on one core; use
# quick-experiments for a smoke pass.
experiments:
	go run ./cmd/experiments all

quick-experiments:
	go run ./cmd/experiments -quick all

fmt:
	gofmt -w .

vet:
	go vet ./...
