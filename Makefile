# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test unit race bench zero-alloc rate-engine bench-compare potential-engine obs-overhead sweep-engine noise-bench experiments quick-experiments fmt vet lint debug fuzz docs-verify

all: build test

build:
	go build ./...

# The default test flow: static checks (go vet plus the semsimlint
# analyzer suite), documentation verification, the full unit suite, the
# semsimdebug invariant build, then the race detector over the packages
# with internal concurrency (the within-run parallel rate engine, the
# sweep/bench fan-outs and the batch job engine).
test: vet lint docs-verify unit debug race zero-alloc

unit:
	go test ./...

# Unit suite with the runtime invariant layer compiled in: electron
# conservation, Fenwick consistency, potential drift and kernel accuracy
# are asserted on every solver step.
debug:
	go test -tags semsimdebug ./...

race:
	go test -race ./internal/solver/... ./internal/sweep/... ./internal/bench/... ./internal/obs/... ./internal/jobs/...

# Documentation is executable: every ```deck example in docs/DECK.md
# must parse, round-trip through the canonical writer and compile, the
# doc must cover every parser directive, and the doccomment analyzer
# (with its fixtures) must hold over the public surface.
docs-verify: bin/semsimlint
	go test -run 'TestDeckDoc' ./internal/netlist/
	go test -run 'TestDoccomment' ./internal/lint/
	go vet -vettool=bin/semsimlint . ./internal/jobs/...

# Disabled observability must stay literally free (nil-receiver hooks
# at 0 allocs/op), and so must the per-event potential update of both
# engines (dense row pass and sparse nonzero walk), the solver's whole
# steady-state event loop (flush, sample, apply, recompute) and the
# noise/FCS recording path (windows, spectral sums, autocorrelation).
zero-alloc:
	go test -run TestObsDisabledZeroAlloc -bench=ObsDisabled -benchmem ./internal/obs/
	go test -run TestPotentialShiftZeroAlloc ./internal/circuit/
	go test -run TestStepHotPathZeroAlloc ./internal/solver/
	go test -run TestNoiseHotPathZeroAlloc ./internal/solver/
	go test -run TestAddZeroAlloc ./internal/noise/

# One testing.B benchmark per paper figure, plus ablations and
# per-package microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# Machine-readable rate-engine benchmark (serial vs parallel, exact vs
# tabulated kernels, c432 dense + c1908 sparse)
# -> results/BENCH_rate_engine.json.
rate-engine:
	go run ./cmd/experiments rate-engine

# Gate the committed rate-engine snapshot: tabulated kernels must not be
# slower than exact evaluation in any configuration. Diff two snapshots
# with `go run ./cmd/benchcmp OLD.json NEW.json`.
bench-compare:
	go run ./cmd/benchcmp results/BENCH_rate_engine.json

# Machine-readable potential-engine benchmark (dense inverse vs exact
# sparse rows vs eps-truncated rows on the four largest circuits)
# -> results/BENCH_potential_engine.json.
potential-engine:
	go run ./cmd/experiments potential-engine

# Observability overhead on c432 (obs off vs metrics-only vs jobs-layer
# task telemetry vs full tracing, same seed)
# -> results/BENCH_obs_overhead.json, then gate it: the always-on modes
# must cost < 5% and every mode must run the identical trajectory.
obs-overhead:
	go run ./cmd/experiments obs-overhead
	go run ./cmd/benchcmp -obs results/BENCH_obs_overhead.json

# Amortized sweep-engine benchmark (compile-once session reuse vs
# per-point rebuild on a 64x64 c1908 map; adaptive mesh refinement vs
# a uniform fine SET diamond lattice)
# -> results/BENCH_sweep_engine.json, then gate it: >= 5x points/s from
# session reuse and >= 4x fewer simulated points from refinement.
sweep-engine:
	go run ./cmd/experiments sweep-engine
	go run ./cmd/benchcmp -sweep results/BENCH_sweep_engine.json

# Streaming noise-recording overhead on c432 (plain current recording
# vs counting-window cumulants on every junction vs the full spectral
# estimator, same seed) -> results/BENCH_noise.json, then gate it: the
# recording modes must cost < 5% and run the identical trajectory.
noise-bench:
	go run ./cmd/experiments noise-bench
	go run ./cmd/benchcmp -noise results/BENCH_noise.json

# Regenerate every figure of the paper into ./results (see
# EXPERIMENTS.md). The full run takes hours on one core; use
# quick-experiments for a smoke pass.
experiments:
	go run ./cmd/experiments all

quick-experiments:
	go run ./cmd/experiments -quick all

fmt:
	gofmt -w .

vet:
	go vet ./...

# The project's own analyzer suite (see DESIGN.md section 7), run
# through `go vet -vettool` so findings carry standard file:line
# formatting and vet's package loader. Both build configurations are
# checked so the semsimdebug-only files stay clean too.
lint: bin/semsimlint
	go vet -vettool=bin/semsimlint ./...
	go vet -vettool=bin/semsimlint -tags semsimdebug ./...

bin/semsimlint: FORCE
	go build -o bin/semsimlint ./cmd/semsimlint

FORCE:

# Short local fuzzing bursts over the committed seed corpora.
fuzz:
	go test -fuzz FuzzNetlistParse -fuzztime 30s ./internal/netlist/
	go test -fuzz FuzzFenwick -fuzztime 30s ./internal/solver/
	go test -fuzz FuzzCheckpointDecode -fuzztime 30s ./internal/solver/
	go test -fuzz FuzzRunFileDecode -fuzztime 30s ./internal/jobs/
