# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test unit race bench rate-engine experiments quick-experiments fmt vet

all: build test

build:
	go build ./...

# The default test flow: static checks, the full unit suite, then the
# race detector over the packages with internal concurrency (the
# within-run parallel rate engine and the sweep/bench fan-outs).
test: vet unit race

unit:
	go test ./...

race:
	go test -race ./internal/solver/... ./internal/sweep/... ./internal/bench/...

# One testing.B benchmark per paper figure, plus ablations and
# per-package microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# Machine-readable rate-engine benchmark (serial vs parallel, exact vs
# tabulated kernels) -> results/BENCH_rate_engine.json.
rate-engine:
	go run ./cmd/experiments rate-engine

# Regenerate every figure of the paper into ./results (see
# EXPERIMENTS.md). The full run takes hours on one core; use
# quick-experiments for a smoke pass.
experiments:
	go run ./cmd/experiments all

quick-experiments:
	go run ./cmd/experiments -quick all

fmt:
	gofmt -w .

vet:
	go vet ./...
