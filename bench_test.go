package semsim

import (
	"testing"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
	"semsim/internal/solver"
	"semsim/internal/units"
)

// One testing.B benchmark per figure of the paper's evaluation. Each
// measures the computational cost of the simulation underlying that
// figure; `go run ./cmd/experiments` regenerates the figures' actual
// data series (see EXPERIMENTS.md).

// BenchmarkFig1b: one I-V point of the normal-state SET of Fig. 1b
// (T = 5 K, R = 1 MOhm, C = 1 aF, Cg = 3 aF), 5000 tunnel events.
func BenchmarkFig1b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, nd := NewSET(SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02, Vg: 0.01,
		})
		s, err := NewSim(c, Options{Temp: 5, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(5000, 0); err != nil {
			b.Fatal(err)
		}
		_ = s.JunctionCurrent(nd.JuncDrain)
	}
}

// BenchmarkFig1c: one I-V point of the superconducting SET of Fig. 1c
// (T = 50 mK, Delta(0) = 0.2 meV, Tc = 1.2 K). The quasi-particle
// tables are built once outside the timed loop, as they are in a sweep.
func BenchmarkFig1c(b *testing.B) {
	mk := func(seed uint64) (*Sim, SETNodes) {
		c, nd := NewSET(SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: 0.02, Vd: -0.02,
			Super: SuperParams{GapAt0: units.MeV(0.2), Tc: 1.2},
		})
		s, err := NewSim(c, Options{Temp: 0.05, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		return s, nd
	}
	s, _ := mk(0) // warm table-build path
	_ = s
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, nd := mk(uint64(i))
		if _, err := s.Run(3000, 1e-4); err != nil && err != ErrBlockaded {
			b.Fatal(err)
		}
		_ = s.JunctionCurrent(nd.JuncDrain)
	}
}

// BenchmarkFig5: one pixel of the Fig. 5 stability map (Manninen-style
// SSET at 0.52 K with background charge 0.65 e): 4000 events including
// Cooper-pair and quasi-particle channels.
func BenchmarkFig5(b *testing.B) {
	mk := func(seed uint64) (*Sim, SETNodes) {
		c, nd := NewSET(SETConfig{
			R1: 210e3, C1: 110 * aF, R2: 210e3, C2: 110 * aF, Cg: 14 * aF,
			Vs: 1.1e-3, Vd: 0, Vg: 0.002, Qb: 0.65 * units.E,
			Super: SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4},
		})
		s, err := NewSim(c, Options{Temp: 0.52, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		return s, nd
	}
	s, _ := mk(0)
	_ = s
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, nd := mk(uint64(i))
		if _, err := s.Run(4000, 1e-3); err != nil && err != ErrBlockaded {
			b.Fatal(err)
		}
		_ = s.JunctionCurrent(nd.JuncDrain)
	}
}

// Fig. 6 benchmarks: solver cost per tunnel event on a mid-size logic
// benchmark (74LS153, 224 junctions), for the three methods the figure
// compares. The full 15-benchmark scaling run is cmd/experiments fig6.

func fig6Workload(b *testing.B) *logicnet.Expanded {
	b.Helper()
	bm, ok := bench.ByName("74LS153")
	if !ok {
		b.Fatal("missing benchmark")
	}
	ex, err := bench.BuildWorkload(bm, logicnet.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// BenchmarkFig6NonAdaptive measures the conventional solver.
func BenchmarkFig6NonAdaptive(b *testing.B) {
	ex := fig6Workload(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := solver.New(ex.Circuit, Options{Temp: bench.WorkloadTemp, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Adaptive measures the paper's adaptive solver on the
// same workload; the speedup vs BenchmarkFig6NonAdaptive is the Fig. 6
// claim in miniature.
func BenchmarkFig6Adaptive(b *testing.B) {
	ex := fig6Workload(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := solver.New(ex.Circuit, Options{Temp: bench.WorkloadTemp, Seed: uint64(i), Adaptive: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Spice measures the compact-model transient baseline on
// the same benchmark (100 backward-Euler steps).
func BenchmarkFig6Spice(b *testing.B) {
	ex := fig6Workload(b)
	sp, err := NewSpice(ex.Circuit, bench.WorkloadTemp)
	if err != nil {
		b.Fatal(err)
	}
	_ = sp // model tables now cached inside the first build
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := NewSpice(ex.Circuit, bench.WorkloadTemp)
		if err != nil {
			b.Fatal(err)
		}
		if err := sp.Run(50e-9, 0.5e-9); err != nil && err != ErrNoConvergence {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Delay measures one propagation-delay extraction (the
// Fig. 7 measurement) on the smallest benchmark with the adaptive
// solver.
func BenchmarkFig7Delay(b *testing.B) {
	bm, ok := bench.ByName("2-to-10-decoder")
	if !ok {
		b.Fatal("missing benchmark")
	}
	p := logicnet.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := bench.MeasureDelay(bm, p, Options{
			Temp: bench.WorkloadTemp, Seed: uint64(77 + i), Adaptive: true,
		})
		if err != nil && err != ErrNoCrossing {
			// A rare frozen run yields no crossing; cost is still
			// representative.
			b.Fatal(err)
		}
	}
}

// Rate-engine microbenchmarks: the cost of a full rate refresh on a
// >= 1000-junction circuit (c432, 2072 junctions), serial vs sharded
// across the worker pool. RefreshEvery=1 makes every event pay a full
// refresh, so the measured time is dominated by exactly the path the
// within-run parallel engine shards. The parallel variant is
// bit-identical to the serial one (asserted by the solver's engine
// tests); this pair only measures the wall-clock difference.

func benchmarkFullRefresh(b *testing.B, parallel int) {
	bm, ok := bench.ByName("c432")
	if !ok {
		b.Fatal("missing benchmark")
	}
	ex, err := bench.BuildWorkload(bm, logicnet.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := solver.New(ex.Circuit, Options{
			Temp: bench.WorkloadTemp, Seed: 7, RefreshEvery: 1, Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(20, 0); err != nil && err != ErrBlockaded {
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkFullRefreshSerial(b *testing.B) { benchmarkFullRefresh(b, 1) }

func BenchmarkFullRefreshParallel(b *testing.B) {
	benchmarkFullRefresh(b, 0) // 0 = GOMAXPROCS workers
}
