package semsim_test

import (
	"fmt"
	"strings"

	"semsim"
)

// ExampleNewSET simulates the paper's Fig. 1 single-electron transistor
// above its Coulomb-blockade threshold and reports whether it conducts.
func ExampleNewSET() {
	c, nd := semsim.NewSET(semsim.SETConfig{
		R1: 1e6, C1: 1e-18,
		R2: 1e6, C2: 1e-18,
		Cg: 3e-18,
		Vs: 0.02, Vd: -0.02, // Vds = 40 mV > threshold e/Csum = 32 mV
	})
	sim, err := semsim.NewSim(c, semsim.Options{Temp: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(20000, 0); err != nil {
		panic(err)
	}
	fmt.Printf("conducting: %v\n", sim.JunctionCurrent(nd.JuncDrain) > 1e-9)
	// Output: conducting: true
}

// ExampleMasterSolve cross-checks a Monte Carlo current against the
// exact master-equation steady state.
func ExampleMasterSolve() {
	mk := func() (*semsim.Circuit, semsim.SETNodes) {
		return semsim.NewSET(semsim.SETConfig{
			R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18,
			Vs: 0.02, Vd: -0.02,
		})
	}
	cME, _ := mk()
	exact, err := semsim.MasterSolve(cME, 5, -6, 6)
	if err != nil {
		panic(err)
	}
	cMC, nd := mk()
	sim, _ := semsim.NewSim(cMC, semsim.Options{Temp: 5, Seed: 2})
	sim.Run(20000, 0)
	sim.ResetMeasurement()
	sim.Run(100000, 0)
	mc := sim.JunctionCurrent(nd.JuncDrain)
	rel := (mc - exact.Current[1]) / exact.Current[1]
	fmt.Printf("MC within 5%% of exact: %v\n", rel < 0.05 && rel > -0.05)
	// Output: MC within 5% of exact: true
}

// ExampleParseLogic expands a NAND gate into single-electron
// transistors and checks its truth table entry NAND(1,1) = 0.
func ExampleParseLogic() {
	nl, err := semsim.ParseLogic(strings.NewReader(
		"input a b\noutput y\ny = NAND a b\n"))
	if err != nil {
		panic(err)
	}
	p := semsim.DefaultLogicParams()
	ex, err := semsim.ExpandLogic(nl, p, map[string]semsim.Source{
		"a": semsim.DC(p.Vdd()),
		"b": semsim.DC(p.Vdd()),
	})
	if err != nil {
		panic(err)
	}
	sim, _ := semsim.NewSim(ex.Circuit, semsim.Options{Temp: 2, Seed: 3})
	if _, err := sim.Run(30000, 5e-6); err != nil && err != semsim.ErrBlockaded {
		panic(err)
	}
	fmt.Printf("SETs: %d, NAND(1,1) low: %v\n",
		ex.NumSETs, sim.Potential(ex.Wire["y"]) < ex.LogicThreshold())
	// Output: SETs: 4, NAND(1,1) low: true
}

// ExampleParseNetlist runs a one-point deck through the SPICE-like
// front end.
func ExampleParseNetlist() {
	deck := `
junc 1 1 3 1e-6 1e-18
junc 2 3 2 1e-6 1e-18
cap 0 3 3e-18
vdc 1 0.02
vdc 2 -0.02
temp 5
record 2
jumps 20000
seed 4
`
	d, err := semsim.ParseNetlist(strings.NewReader(deck))
	if err != nil {
		panic(err)
	}
	pts, err := semsim.RunDeck(d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("points: %d, conducting: %v\n", len(pts), pts[0].Current[2] > 1e-9)
	// Output: points: 1, conducting: true
}
