package semsim

import (
	"io"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
	"semsim/internal/spicemodel"
)

// Gate-level logic front end: parse a gate netlist, expand it into
// nSET/pSET voltage-state logic, and simulate it with the Monte Carlo
// engine or the compact-model SPICE baseline.
type (
	// LogicNetlist is a gate-level circuit (INV/NAND/NOR/AND/OR/XOR/BUF).
	LogicNetlist = logicnet.Netlist
	// LogicGate is one gate instance.
	LogicGate = logicnet.Gate
	// LogicParams is the electrical design of the expanded SET logic.
	LogicParams = logicnet.Params
	// ExpandedLogic is the SET realization of a logic netlist.
	ExpandedLogic = logicnet.Expanded
)

// ParseLogic reads a gate netlist ("out = NAND a b" lines; see the
// logicnet documentation).
func ParseLogic(r io.Reader) (*LogicNetlist, error) { return logicnet.Parse(r) }

// DefaultLogicParams returns the validated nSET/pSET design used by the
// benchmark suite.
func DefaultLogicParams() LogicParams { return logicnet.DefaultParams() }

// ExpandLogic builds the SET circuit for a logic netlist; drive maps
// input names to sources (missing inputs are tied low).
func ExpandLogic(nl *LogicNetlist, p LogicParams, drive map[string]Source) (*ExpandedLogic, error) {
	return nl.Expand(p, drive)
}

// ExpandLogicWith is ExpandLogic with explicit circuit build options,
// e.g. the sparse potential engine for large benchmarks.
func ExpandLogicWith(nl *LogicNetlist, p LogicParams, drive map[string]Source, bo BuildOptions) (*ExpandedLogic, error) {
	return nl.ExpandWith(p, drive, bo)
}

// Benchmark is one entry of the paper's 15-circuit evaluation suite.
type Benchmark = bench.Benchmark

// Benchmarks returns the paper's 15 logic benchmarks (76 to 6988
// junctions) in ascending size, re-created at the published junction
// counts.
func Benchmarks() []Benchmark { return bench.Suite() }

// BenchmarkByName returns a suite entry by its Fig. 6 name (e.g.
// "c432", "Full-Adder").
func BenchmarkByName(name string) (Benchmark, bool) { return bench.ByName(name) }

// SpiceSim is the analytical compact-model transient baseline (the
// paper's "SPICE" comparator).
type SpiceSim = spicemodel.Sim

// ErrNoConvergence reports a SPICE Newton-Raphson failure — the paper's
// missing Fig. 6 bars.
var ErrNoConvergence = spicemodel.ErrNoConvergence

// NewSpice builds the compact-model view of a SET circuit: islands with
// two junctions become averaged analytic devices, wires stay as nodes.
func NewSpice(c *Circuit, temp float64) (*SpiceSim, error) {
	return spicemodel.FromCircuit(c, temp)
}
