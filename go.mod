module semsim

go 1.22
