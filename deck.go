package semsim

import (
	"fmt"
	"io"

	"semsim/internal/netlist"
	"semsim/internal/solver"
)

// Deck is a parsed SPICE-like input file (the paper's Example Input
// File 1 format; see the netlist documentation in README.md).
type Deck = netlist.Deck

// CompiledDeck is one instantiation of a deck: a built circuit plus the
// netlist-number to circuit-id mappings.
type CompiledDeck = netlist.Compiled

// ParseNetlist reads a simulation deck.
func ParseNetlist(r io.Reader) (*Deck, error) { return netlist.Parse(r) }

// DeckPoint is one operating point of an executed deck.
type DeckPoint struct {
	// SweepV is the swept source value (0 when the deck has no sweep).
	SweepV float64
	// Current holds the measured current per recorded junction
	// (netlist junction ids), averaged over the deck's runs.
	Current map[int]float64
	// Blockaded marks points where no event was possible.
	Blockaded bool
	// Events is the total tunnel events across runs.
	Events uint64
}

// DeckOverrides adjusts solver settings the deck file format cannot
// express (engine knobs rather than physics).
type DeckOverrides struct {
	// Parallel is the within-run worker count of the rate engine
	// (0 = solver default, GOMAXPROCS; 1 = serial). Bit-identical to
	// serial at any value — purely a speed knob.
	Parallel int
	// RateTables routes normal-state orthodox and cotunneling rates
	// through the shared error-bounded interpolation tables (relative
	// error < 1e-6).
	RateTables bool
	// Sparse forces the sparse locality-aware potential engine even
	// when the deck does not request it. With CinvEps = 0 the engine is
	// exact and trajectories stay bit-identical to the dense engine.
	Sparse bool
	// CinvEps, when > 0, truncates C^-1 rows at CinvEps*rowmax
	// (implies Sparse) and overrides the deck's cinv-eps value. The
	// solver then accumulates a provable potential-error bound in its
	// Stats.
	CinvEps float64
}

// RunDeck executes a deck: for each sweep point (or once, without a
// sweep) it compiles the circuit, runs the configured number of jumps
// and/or simulated time for each requested run (distinct seeds), and
// averages the recorded junction currents.
func RunDeck(d *Deck) ([]DeckPoint, error) {
	return RunDeckWith(d, DeckOverrides{})
}

// RunDeckWith is RunDeck with engine overrides applied to every point.
func RunDeckWith(d *Deck, ov DeckOverrides) ([]DeckPoint, error) {
	spec := d.Spec
	if len(spec.RecordJuncs) == 0 {
		return nil, fmt.Errorf("semsim: deck records no junctions (add a 'record' line)")
	}
	if spec.Jumps == 0 && spec.MaxTime == 0 {
		return nil, fmt.Errorf("semsim: deck sets neither 'jumps' nor 'time'")
	}

	var sweepVals []float64
	if sw := spec.Sweep; sw != nil {
		for v := -sw.Max; v <= sw.Max+sw.Step/2; v += sw.Step {
			sweepVals = append(sweepVals, v)
		}
	} else {
		sweepVals = []float64{0}
	}

	// Engine selection: the deck's sparse/cinv-eps directives choose the
	// build; overrides can force the sparse view or a coarser truncation
	// on top (a dense build can derive any sparse view on demand).
	sparse := spec.Sparse || ov.Sparse || ov.CinvEps > 0
	eps := spec.CinvEps
	if ov.CinvEps > 0 {
		eps = ov.CinvEps
	}

	var out []DeckPoint
	for i, v := range sweepVals {
		override := map[int]float64{}
		if sw := spec.Sweep; sw != nil {
			override[sw.Node] = v
			if sw.Mirror >= 0 {
				override[sw.Mirror] = -v
			}
		}
		pt := DeckPoint{SweepV: v, Current: map[int]float64{}}
		runs := spec.Runs
		if runs < 1 {
			runs = 1
		}
		for run := 0; run < runs; run++ {
			cc, err := d.Compile(override)
			if err != nil {
				return nil, err
			}
			opt := Options{
				Temp:             spec.Temp,
				Cotunneling:      spec.Cotunnel,
				Adaptive:         spec.Adaptive,
				Alpha:            spec.Alpha,
				RefreshEvery:     spec.RefreshEvery,
				Seed:             spec.Seed + uint64(i)*1009 + uint64(run)*104729,
				Parallel:         ov.Parallel,
				RateTables:       ov.RateTables,
				SparsePotentials: sparse,
				CinvTruncation:   eps,
			}
			s, err := NewSim(cc.Circuit, opt)
			if err != nil {
				return nil, err
			}
			err = func() error {
				defer s.Close()
				// Warm up for a fifth of the budget, then measure.
				warm := spec.Jumps / 5
				if _, err := s.Run(warm, spec.MaxTime/5); err != nil {
					return err
				}
				s.ResetMeasurement()
				n, err := s.Run(spec.Jumps, spec.MaxTime)
				if err != nil {
					return err
				}
				pt.Events += n
				for _, j := range spec.RecordJuncs {
					cj, ok := cc.Junc[j]
					if !ok {
						return fmt.Errorf("semsim: deck records unknown junction %d", j)
					}
					pt.Current[j] += s.JunctionCurrent(cj) / float64(runs)
				}
				return nil
			}()
			if err == solver.ErrBlockaded {
				pt.Blockaded = true
				continue
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
