package semsim

import (
	"context"
	"io"

	"semsim/internal/jobs"
	"semsim/internal/netlist"
)

// Deck is a parsed SPICE-like input file (the paper's Example Input
// File 1 format; see docs/DECK.md for the full directive reference).
type Deck = netlist.Deck

// CompiledDeck is one instantiation of a deck: a built circuit plus the
// netlist-number to circuit-id mappings.
type CompiledDeck = netlist.Compiled

// ParseNetlist reads a simulation deck.
func ParseNetlist(r io.Reader) (*Deck, error) { return netlist.Parse(r) }

// DeckPoint is one operating point of an executed deck: the swept
// source value, the per-junction currents averaged over the deck's
// runs, and the measured event count.
type DeckPoint = jobs.Point

// DeckOverrides adjusts engine settings on top of the deck's own
// directives (command-line flags win over the file): within-run
// parallelism, tabulated rate kernels, and the sparse potential engine
// with its C^-1 truncation threshold.
type DeckOverrides = jobs.Overrides

// DeckRunConfig tunes RunDeckCtx: checkpoint directory and cadence,
// resume, task concurrency, and a drain channel. The zero value
// matches RunDeck exactly.
type DeckRunConfig = jobs.RunConfig

// ErrDeckInterrupted is returned by RunDeckCtx when a drain request
// (DeckRunConfig.Stop) stopped the execution after checkpointing: the
// run is incomplete but resumable with DeckRunConfig.Resume.
var ErrDeckInterrupted = jobs.ErrInterrupted

// RunDeck executes a deck: for each sweep point (or once, without a
// sweep) it compiles the circuit, runs the configured number of jumps
// and/or simulated time for each requested run (distinct seeds), and
// averages the recorded junction currents.
func RunDeck(d *Deck) ([]DeckPoint, error) {
	return RunDeckWith(d, DeckOverrides{})
}

// RunDeckWith is RunDeck with engine overrides applied to every point.
func RunDeckWith(d *Deck, ov DeckOverrides) ([]DeckPoint, error) {
	return jobs.ExecuteDeck(context.Background(), d, ov, jobs.RunConfig{})
}

// RunDeckCtx is the full-control deck executor: cancelable through
// ctx, optionally crash-safe (periodic atomic checkpoints in cfg.Dir,
// resumed bit-identically with cfg.Resume), and parallel across
// (point, run) tasks up to cfg.Workers with deterministic folding —
// the result is bit-identical at any worker count. See the jobs
// package for the determinism argument.
func RunDeckCtx(ctx context.Context, d *Deck, ov DeckOverrides, cfg DeckRunConfig) ([]DeckPoint, error) {
	return jobs.ExecuteDeck(ctx, d, ov, cfg)
}
