// thermal_washout sweeps temperature to show the Coulomb blockade
// washing out: sharp suppression at kT << Ec, ohmic conduction at
// kT >> Ec. The crossover tracks the charging energy Ec = e^2/2Csum
// (~ 185 K for this device) — the knob that decides whether a SET
// works at 4 K or at room temperature.
//
//	go run ./examples/thermal_washout
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	const aF = 1e-18
	// Bias at half the blockade threshold: conduction here is purely
	// thermally activated.
	const vds = 0.016

	ec := semsim.E * semsim.E / (2 * 5 * aF)
	fmt.Printf("SET at Vds = %.0f mV (threshold 32 mV), Ec/kB = %.0f K\n\n", vds*1e3, ec/semsim.KB)
	fmt.Println("   T(K)    kT/Ec     I(A)        I/Iohmic")
	iOhm := vds / 2e6
	for _, temp := range []float64{2, 5, 10, 20, 50, 100, 200, 400} {
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: vds / 2, Vd: -vds / 2,
		})
		s, err := semsim.NewSim(c, semsim.Options{Temp: temp, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Run(4000, 1e-3); err != nil && err != semsim.ErrBlockaded {
			log.Fatal(err)
		}
		s.ResetMeasurement()
		if _, err := s.Run(40000, 1e-2); err != nil && err != semsim.ErrBlockaded {
			log.Fatal(err)
		}
		i := s.JunctionCurrent(nd.JuncDrain)
		fmt.Printf("%7.0f  %7.3f   %.3e   %8.4f\n", temp, semsim.KB*temp/ec, i, i/iOhm)
	}
	fmt.Println("\nkT/Ec << 1: blockaded; kT/Ec >~ 1: the device is just two resistors.")
}
