// Quickstart: simulate the paper's Fig. 1 single-electron transistor
// and print its I-V curve, showing the Coulomb blockade and how the
// gate voltage modulates it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	// The SET of Fig. 1b: R1 = R2 = 1 MOhm, C1 = C2 = 1 aF, Cg = 3 aF,
	// symmetric bias, T = 5 K.
	const (
		aF   = 1e-18
		temp = 5.0
	)

	fmt.Println("Vds(mV)   I@Vg=0mV(nA)  I@Vg=27mV(nA)   (27 mV ~ e/2Cg: degeneracy)")
	for vds := -0.04; vds <= 0.0401; vds += 0.005 {
		row := fmt.Sprintf("%7.1f", vds*1e3)
		for _, vg := range []float64{0, 0.0267} {
			c, nd := semsim.NewSET(semsim.SETConfig{
				R1: 1e6, C1: aF,
				R2: 1e6, C2: aF,
				Cg: 3 * aF,
				Vs: vds / 2, Vd: -vds / 2, Vg: vg,
			})
			sim, err := semsim.NewSim(c, semsim.Options{Temp: temp, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			// Warm up past the initial transient, then measure.
			if _, err := sim.Run(3000, 0); err != nil {
				log.Fatal(err)
			}
			sim.ResetMeasurement()
			if _, err := sim.Run(20000, 0); err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %12.4f", sim.JunctionCurrent(nd.JuncDrain)*1e9)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("Near Vds = 0 the Vg = 0 column is suppressed (Coulomb blockade,")
	fmt.Println("threshold e/Csum ~ 32 mV) while the degeneracy-gate column conducts.")
}
