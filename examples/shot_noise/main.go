// shot_noise uses the solver's full counting statistics to measure the
// shot-noise Fano factor of a SET versus bias — a standard
// device-research experiment. Far above threshold a symmetric double
// junction is sub-Poissonian with F -> 1/2; approaching the Coulomb
// blockade threshold, correlations change and F rises toward 1.
//
//	go run ./examples/shot_noise
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	const (
		aF  = 1e-18
		tau = 40e-9 // counting window
		rep = 200   // windows per bias point
	)
	fmt.Println("symmetric SET, T = 0: shot-noise Fano factor vs bias")
	fmt.Println("(threshold e/Csum = 32 mV; F -> 1/2 deep in transport)")
	fmt.Println()
	fmt.Println(" Vds(mV)   <N>      Fano")
	for _, vds := range []float64{0.04, 0.05, 0.07, 0.1, 0.15} {
		counts := make([]float64, rep)
		for r := 0; r < rep; r++ {
			c, nd := semsim.NewSET(semsim.SETConfig{
				R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
				Vs: vds / 2, Vd: -vds / 2,
			})
			s, err := semsim.NewSim(c, semsim.Options{Temp: 0, Seed: uint64(1000*r) + 7})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := s.Run(200, 0); err != nil { // transient
				log.Fatal(err)
			}
			s.ResetMeasurement()
			if _, err := s.Run(0, s.Time()+tau); err != nil {
				log.Fatal(err)
			}
			fw, bw := s.JunctionEvents(nd.JuncDrain)
			counts[r] = float64(bw) - float64(fw)
		}
		mean, varc := 0.0, 0.0
		for _, n := range counts {
			mean += n
		}
		mean /= rep
		for _, n := range counts {
			varc += (n - mean) * (n - mean)
		}
		varc /= rep - 1
		fmt.Printf("%8.0f %7.1f   %6.3f\n", vds*1e3, mean, varc/mean)
	}
}
