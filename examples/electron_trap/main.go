// electron_trap demonstrates the single-electron memory element the
// paper's introduction cites ("electron traps for memory" [5], [6]):
// a storage island guarded by a two-junction barrier. Sweeping the gate
// traces a hysteresis loop — the electron enters near +78 mV and only
// leaves near -52 mV, so around Vg = 0 both charge states are stable
// and the trap retains one bit.
//
//	go run ./examples/electron_trap
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	const aF = 1e-18
	c := semsim.NewCircuit()
	word := c.AddNode("word", semsim.External)
	c.SetSource(word, semsim.DC(0))
	gnd := c.AddNode("gnd", semsim.External)
	c.SetSource(gnd, semsim.DC(0))
	gate := c.AddNode("gate", semsim.External)
	// Triangular gate sweep: 0 -> +100 mV -> -100 mV -> 0.
	ramp := semsim.PWL{
		T:    []float64{0, 5e-6, 15e-6, 20e-6},
		Volt: []float64{0, 0.10, -0.10, 0},
	}
	c.SetSource(gate, ramp)
	// Barrier: two 2 aF junctions through a small intermediate island
	// (its ~13 mV charging energy is the trap barrier).
	mid := c.AddNode("mid", semsim.Island)
	c.AddJunction(word, mid, 1e6, 2*aF)
	c.AddCap(mid, gnd, 0.5*aF)
	// Storage node: large enough to hold the electron comfortably,
	// strongly gate-coupled.
	store := c.AddNode("store", semsim.Island)
	c.AddJunction(mid, store, 1e6, 2*aF)
	c.AddCap(store, gnd, 6*aF)
	c.AddCap(gate, store, 6*aF)
	if err := c.Build(); err != nil {
		log.Fatal(err)
	}

	s, err := semsim.NewSim(c, semsim.Options{Temp: 1, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gate sweep 0 -> +100 mV -> -100 mV -> 0 at T = 1 K")
	fmt.Println("   t(us)   Vg(mV)   electrons on storage")
	prev := 99
	for tq := 0.1e-6; tq <= 20e-6; tq += 0.1e-6 {
		if _, err := s.Run(0, tq); err != nil && err != semsim.ErrBlockaded {
			log.Fatal(err)
		}
		if n := s.ElectronCount(store); n != prev {
			fmt.Printf("%7.2f  %+7.1f   %+d\n", tq*1e6, ramp.V(tq)*1e3, n)
			prev = n
		}
	}
	fmt.Println()
	fmt.Println("The charge state switches at different gate voltages on the way up")
	fmt.Println("(+78 mV) and down (-52 mV): a >100 mV hysteresis window in which the")
	fmt.Println("trap remembers its bit. Retention at Vg = 0 is set by the barrier")
	fmt.Println("island's charging energy (~150 K) versus temperature.")
}
