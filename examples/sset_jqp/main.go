// sset_jqp reproduces the physics of the paper's Fig. 5 on a single
// bias trace: a superconducting SET (the Manninen-style device) swept
// below the quasi-particle threshold shows a Josephson quasi-particle
// (JQP) resonance — a current peak carried by Cooper-pair tunneling
// completed by quasi-particle escape.
//
//	go run ./examples/sset_jqp
package main

import (
	"fmt"
	"log"

	"semsim"
)

func main() {
	const (
		aF   = 1e-18
		temp = 0.52 // kelvin
		vg   = 0.002
	)

	fmt.Println("Superconducting SET: R = 210 kOhm, C = 110 aF, Cg = 14 aF,")
	fmt.Println("Delta(0) = 0.23 meV, Tc = 1.4 K, Qb = 0.65 e, T = 0.52 K, Vg = 2 mV")
	fmt.Println()
	fmt.Println("Vbias(mV)     I(pA)   Cooper-pair events")
	for vb := 0.7e-3; vb <= 1.45e-3; vb += 0.05e-3 {
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 210e3, C1: 110 * aF,
			R2: 210e3, C2: 110 * aF,
			Cg: 14 * aF,
			Vs: vb, Vd: 0, Vg: vg,
			Qb:    0.65 * semsim.E,
			Super: semsim.SuperParams{GapAt0: semsim.MeV(0.23), Tc: 1.4},
		})
		sim, err := semsim.NewSim(c, semsim.Options{Temp: temp, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.Run(3000, 0); err != nil && err != semsim.ErrBlockaded {
			log.Fatal(err)
		}
		sim.ResetMeasurement()
		if _, err := sim.Run(15000, 1e-3); err != nil && err != semsim.ErrBlockaded {
			log.Fatal(err)
		}
		st := sim.Stats()
		fmt.Printf("%8.2f  %9.2f   %d\n",
			vb*1e3, sim.JunctionCurrent(nd.JuncDrain)*1e12, st.CooperEvents)
	}
	fmt.Println()
	fmt.Println("The sub-threshold peak near 1.1 mV rides on Cooper-pair events (the")
	fmt.Println("JQP cycle); above ~1.3 mV the quasi-particle channel opens and the")
	fmt.Println("current rises monotonically.")
}
