// logic_and builds the paper's Fig. 4b scenario — an AND function in
// nSET/pSET voltage-state logic — drives one input with a step, and
// prints the output waveform and its propagation delay.
//
//	go run ./examples/logic_and
package main

import (
	"fmt"
	"log"
	"strings"

	"semsim"
)

func main() {
	nl, err := semsim.ParseLogic(strings.NewReader(`
name and-gate
input a b
output y
y = AND a b
`))
	if err != nil {
		log.Fatal(err)
	}

	p := semsim.DefaultLogicParams()
	vdd := p.Vdd()
	fmt.Printf("AND gate in SET logic: %d transistors, %d junctions, Vdd = %.1f mV\n",
		nl.NumSETs(), nl.NumJunctions(), vdd*1e3)

	// b is held high; a steps 0 -> Vdd at 400 ns, so y = AND(a, 1)
	// follows a.
	const stepAt = 400e-9
	drive := map[string]semsim.Source{
		"b": semsim.DC(vdd),
		"a": semsim.PWL{T: []float64{0, stepAt, stepAt + 1e-9}, Volt: []float64{0, 0, vdd}},
	}
	ex, err := semsim.ExpandLogic(nl, p, drive)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := semsim.NewSim(ex.Circuit, semsim.Options{Temp: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	out := ex.Wire["y"]
	sim.AddProbe(out)
	if _, err := sim.Run(0, stepAt+1.5e-6); err != nil && err != semsim.ErrBlockaded {
		log.Fatal(err)
	}

	w := semsim.SmoothWaveform(sim.Waveform(out), 20e-9)
	fmt.Println("\n   t(ns)   y(mV)")
	last := -1.0
	for _, s := range w {
		if s.T-last < 100e-9 {
			continue
		}
		last = s.T
		bar := strings.Repeat("#", int(s.V/vdd*30+0.5))
		fmt.Printf("%8.0f  %6.2f  %s\n", s.T*1e9, s.V*1e3, bar)
	}

	d, err := semsim.PropagationDelay(sim.Waveform(out), stepAt+1e-9, vdd/2, 20e-9, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npropagation delay (50%% swing): %.1f ns\n", d*1e9)
	st := sim.Stats()
	fmt.Printf("simulated %d tunnel events over %.2f us\n", st.Events, sim.Time()*1e6)
}
