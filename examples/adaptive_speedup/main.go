// adaptive_speedup demonstrates the paper's headline result on one
// benchmark: the adaptive solver computes far fewer tunnel rates per
// event than the conventional non-adaptive solver — and runs
// correspondingly faster — while measuring the same propagation delay
// within a few percent (Figs. 6 and 7 in miniature).
//
//	go run ./examples/adaptive_speedup [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"semsim"
	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

func main() {
	name := "74LS153" // 224 junctions
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, ok := semsim.BenchmarkByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (try: go run ./cmd/benchgen)", name)
	}
	fmt.Printf("benchmark %s: %d junctions (%d SETs)\n",
		b.Name, b.Netlist.NumJunctions(), b.Netlist.NumSETs())

	p := logicnet.DefaultParams()
	ex, err := bench.BuildWorkload(b, p)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, adaptive bool) (float64, float64) {
		start := time.Now()
		res, err := bench.MeasureDelayOn(ex, b, semsim.Options{
			Temp:     bench.WorkloadTemp,
			Seed:     42,
			Adaptive: adaptive,
		})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		perEvent := float64(res.RateCalcs) / float64(res.Events)
		fmt.Printf("%-13s delay %7.1f ns   %8d events   %6.1f rate calcs/event   wall %v\n",
			label, res.Delay*1e9, res.Events, perEvent, wall.Round(time.Millisecond))
		return res.Delay, perEvent
	}

	dNA, rNA := run("non-adaptive", false)
	dAD, rAD := run("adaptive", true)

	fmt.Println()
	fmt.Printf("rate-calculation reduction: %.1fx\n", rNA/rAD)
	errPct := 100 * abs(dAD-dNA) / dNA
	fmt.Printf("delay disagreement:         %.2f%% (paper's suite average: 3.30%%)\n", errPct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
