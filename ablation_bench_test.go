package semsim

import (
	"fmt"
	"testing"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// adaptive threshold alpha, the periodic full-refresh interval, and the
// Fenwick-tree event selection. Run with
//
//	go test -bench=Ablation -benchmem
//
// Larger alpha means fewer rate recalculations (faster, less accurate);
// the refresh interval bounds the accumulated error; the Fenwick tree
// makes selection cost logarithmic instead of linear.

func ablationWorkload(b *testing.B) *logicnet.Expanded {
	b.Helper()
	bm, ok := bench.ByName("74LS153")
	if !ok {
		b.Fatal("missing benchmark")
	}
	ex, err := bench.BuildWorkload(bm, logicnet.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// BenchmarkAblationAlpha sweeps the adaptive testing-factor threshold.
func BenchmarkAblationAlpha(b *testing.B) {
	ex := ablationWorkload(b)
	for _, alpha := range []float64{0.01, 0.05, 0.2} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := NewSim(ex.Circuit, Options{
					Temp: bench.WorkloadTemp, Seed: uint64(i),
					Adaptive: true, Alpha: alpha,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
					b.Fatal(err)
				}
				st := s.Stats()
				b.ReportMetric(float64(st.RateCalcs)/float64(st.Events), "ratecalcs/event")
			}
		})
	}
}

// BenchmarkAblationRefresh sweeps the periodic full-refresh interval.
func BenchmarkAblationRefresh(b *testing.B) {
	ex := ablationWorkload(b)
	for _, every := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("refresh=%d", every), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := NewSim(ex.Circuit, Options{
					Temp: bench.WorkloadTemp, Seed: uint64(i),
					Adaptive: true, RefreshEvery: every,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCotunneling measures the cost of enabling
// second-order channels on a single device.
func BenchmarkAblationCotunneling(b *testing.B) {
	for _, cot := range []bool{false, true} {
		b.Run(fmt.Sprintf("cotunnel=%v", cot), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, _ := NewSET(SETConfig{
					R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
					Vs: 0.01, Vd: -0.01,
				})
				s, err := NewSim(c, Options{Temp: 2, Seed: uint64(i), Cotunneling: cot})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(2000, 0); err != nil && err != ErrBlockaded {
					b.Fatal(err)
				}
			}
		})
	}
}
