package semsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

const aF = 1e-18

func TestQuickstartSET(t *testing.T) {
	c, nd := NewSET(SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.02, Vd: -0.02,
	})
	sim, err := NewSim(c, Options{Temp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(20000, 0); err != nil {
		t.Fatal(err)
	}
	if i := sim.JunctionCurrent(nd.JuncDrain); i <= 0 {
		t.Fatalf("SET at 40 mV bias should conduct, got %g", i)
	}
}

func TestMasterCrossCheckThroughFacade(t *testing.T) {
	c, _ := NewSET(SETConfig{
		R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
		Vs: 0.02, Vd: -0.02,
	})
	res, err := MasterSolve(c, 5, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Current[1] <= 0 {
		t.Fatalf("master current %g", res.Current[1])
	}
}

func TestRunDeckPaperExample(t *testing.T) {
	// The paper's example input file, with a coarse sweep so the test
	// stays fast. Sweeping node 2 in [-20, 20] mV with node 1 mirrored
	// gives Vds in [-40, 40] mV: the Fig. 1b I-V curve.
	deck := `
junc 1 1 4 1e-6 1e-18
junc 2 2 4 1e-6 1e-18
cap 3 4 3e-18
charge 4 0.0
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
temp 5
record 2
jumps 4000
sweep 2 0.02 0.01
seed 7
`
	d, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunDeck(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("sweep points = %d, want 5", len(pts))
	}
	// Ends of the sweep conduct in opposite directions; middle is
	// blockade-suppressed.
	first := pts[0].Current[2]
	last := pts[len(pts)-1].Current[2]
	mid := pts[2].Current[2]
	if first == 0 || last == 0 || first*last > 0 {
		t.Fatalf("sweep endpoints: %g and %g, want opposite signs", first, last)
	}
	if math.Abs(mid) > 0.2*math.Abs(last) {
		t.Fatalf("blockade point current %g vs edge %g", mid, last)
	}
}

func TestRunDeckValidation(t *testing.T) {
	noRecord := `
junc 1 0 1 1e-6 1e-18
temp 1
jumps 10
`
	d, err := ParseNetlist(strings.NewReader(noRecord))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDeck(d); err == nil {
		t.Fatal("deck without record accepted")
	}
	noStop := `
junc 1 0 1 1e-6 1e-18
temp 1
record 1
`
	d, err = ParseNetlist(strings.NewReader(noStop))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDeck(d); err == nil {
		t.Fatal("deck without stop condition accepted")
	}
}

func TestRunDeckSuperconducting(t *testing.T) {
	// End-to-end superconducting deck: sub-gap bias suppressed, above
	// the quasi-particle threshold conducting.
	deck := `
junc 1 1 3 4.76e-6 110e-18
junc 2 3 2 4.76e-6 110e-18
cap 0 3 14e-18
vdc 1 %g
vdc 2 0
temp 0.1
super 0.23e-3 1.4
record 2
jumps 8000
time 1e-3
seed 9
`
	run := func(vb float64) float64 {
		d, err := ParseNetlist(strings.NewReader(fmt.Sprintf(deck, vb)))
		if err != nil {
			t.Fatal(err)
		}
		pts, err := RunDeck(d)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Current[2]
	}
	sub := run(1.0e-3)   // between e/Csum and e/Csum + 4*Delta/e
	above := run(2.5e-3) // beyond the quasi-particle threshold
	if above <= 0 {
		t.Fatalf("SSET above threshold should conduct: %g", above)
	}
	if math.Abs(sub) > 0.05*above {
		t.Fatalf("gap did not suppress sub-threshold current: %g vs %g", sub, above)
	}
}

func TestLogicFacade(t *testing.T) {
	nl, err := ParseLogic(strings.NewReader("input a\noutput y\ny = INV a\n"))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExpandLogic(nl, DefaultLogicParams(), map[string]Source{"a": DC(0)})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumSETs != 2 {
		t.Fatalf("inverter SETs = %d", ex.NumSETs)
	}
	sp, err := NewSpice(ex.Circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumDevices() != 2 {
		t.Fatalf("spice devices = %d", sp.NumDevices())
	}
}

func TestBenchmarksFacade(t *testing.T) {
	suite := Benchmarks()
	if len(suite) != 15 {
		t.Fatalf("suite size %d", len(suite))
	}
	b, ok := BenchmarkByName("c1908")
	if !ok || b.Netlist.NumJunctions() != 6988 {
		t.Fatalf("c1908 lookup failed: %v %d", ok, b.Netlist.NumJunctions())
	}
}

func TestIVFacade(t *testing.T) {
	build := func(v float64) (*Circuit, int, error) {
		c, nd := NewSET(SETConfig{
			R1: 1e6, C1: aF, R2: 1e6, C2: aF, Cg: 3 * aF,
			Vs: v / 2, Vd: -v / 2,
		})
		return c, nd.JuncDrain, nil
	}
	pts, err := IV(build, []float64{-0.04, 0, 0.04}, SweepConfig{
		Options: Options{Temp: 5, Seed: 3}, WarmEvents: 500, Events: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].I >= 0 || pts[2].I <= 0 {
		t.Fatalf("IV endpoint signs wrong: %g %g", pts[0].I, pts[2].I)
	}
}
