// Command benchcmp diffs rate-engine benchmark snapshots and gates the
// kernel-table invariant.
//
// Usage:
//
//	benchcmp NEW.json           check one snapshot: tables >= exact
//	benchcmp OLD.json NEW.json  per-configuration speedup table, then
//	                            the same check on NEW.json
//	benchcmp -obs SNAP.json     gate an obs-overhead snapshot: the
//	                            always-on modes (metrics, jobmetrics)
//	                            must cost < 5% and every mode must have
//	                            run the identical trajectory
//
// With two files it prints old vs new events/s and the speedup for
// every (benchmark, mode, workers, kernel) configuration, matching rows
// across the single-report and report-array file formats. In both forms
// the exit status is the regression gate used by `make bench-compare`:
// nonzero if any configuration in the newest snapshot runs slower with
// tabulated kernels than with exact evaluation. The -obs form is the
// gate behind `make obs-overhead` and CI.
package main

import (
	"fmt"
	"os"

	"semsim/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// obsBudgetPct bounds what the always-on observability modes may cost
// relative to a bare solver run.
const obsBudgetPct = 5.0

func run(args []string) error {
	if len(args) >= 1 && args[0] == "-obs" {
		if len(args) != 2 {
			return fmt.Errorf("usage: benchcmp -obs SNAP.json")
		}
		return gateObs(args[1])
	}
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: benchcmp [-obs] [OLD.json] NEW.json")
	}
	newest, err := bench.LoadRateEngineReports(args[len(args)-1])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		old, err := bench.LoadRateEngineReports(args[0])
		if err != nil {
			return err
		}
		fmt.Print(bench.CompareRateEngine(old, newest))
	}
	if bad := bench.CheckTablesAtLeastExact(newest); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("tabulated kernels slower than exact in %d configuration(s)", len(bad))
	}
	fmt.Println("tables >= exact in every configuration")
	return nil
}

// gateObs applies the always-on observability budget to an obs-overhead
// snapshot.
func gateObs(path string) error {
	rep, err := bench.LoadObsOverheadReport(path)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-10s  %10.0f events/s  %+5.1f%% overhead\n", r.Mode, r.EventsPerSec, r.OverheadPct)
	}
	if bad := bench.CheckObsOverheadBudget(rep, obsBudgetPct); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("observability overhead gate failed (%d violation(s))", len(bad))
	}
	fmt.Printf("always-on observability under the %.0f%% budget, trajectories identical\n", obsBudgetPct)
	return nil
}
