// Command benchcmp diffs rate-engine benchmark snapshots and gates the
// kernel-table invariant.
//
// Usage:
//
//	benchcmp NEW.json           check one snapshot: tables >= exact
//	benchcmp OLD.json NEW.json  per-configuration speedup table, then
//	                            the same check on NEW.json
//	benchcmp -obs SNAP.json     gate an obs-overhead snapshot: the
//	                            always-on modes (metrics, jobmetrics)
//	                            must cost < 5% and every mode must have
//	                            run the identical trajectory
//	benchcmp -sweep SNAP.json   gate a sweep-engine snapshot: the
//	                            compile-once session path must be >= 5x
//	                            the per-point rebuild path in points/s,
//	                            and adaptive refinement must simulate
//	                            >= 4x fewer points than the uniform
//	                            fine lattice
//	benchcmp -noise SNAP.json   gate a noise-overhead snapshot: the
//	                            counting-window and spectral recording
//	                            modes must cost < 5% over plain current
//	                            recording on the identical trajectory
//
// With two files it prints old vs new events/s and the speedup for
// every (benchmark, mode, workers, kernel) configuration, matching rows
// across the single-report and report-array file formats. In both forms
// the exit status is the regression gate used by `make bench-compare`:
// nonzero if any configuration in the newest snapshot runs slower with
// tabulated kernels than with exact evaluation. The -obs form is the
// gate behind `make obs-overhead` and CI.
package main

import (
	"fmt"
	"os"

	"semsim/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// obsBudgetPct bounds what the always-on observability modes may cost
// relative to a bare solver run.
const obsBudgetPct = 5.0

// noiseBudgetPct bounds what streaming noise accumulation may cost
// relative to plain current recording.
const noiseBudgetPct = 5.0

// Sweep-engine floors: compile-once reuse must beat per-point rebuild
// by sweepMinSpeedup in points/s, and refinement must simulate
// sweepMinSavings times fewer points than the uniform fine lattice.
const (
	sweepMinSpeedup = 5.0
	sweepMinSavings = 4.0
)

func run(args []string) error {
	if len(args) >= 1 && args[0] == "-obs" {
		if len(args) != 2 {
			return fmt.Errorf("usage: benchcmp -obs SNAP.json")
		}
		return gateObs(args[1])
	}
	if len(args) >= 1 && args[0] == "-noise" {
		if len(args) != 2 {
			return fmt.Errorf("usage: benchcmp -noise SNAP.json")
		}
		return gateNoise(args[1])
	}
	if len(args) >= 1 && args[0] == "-sweep" {
		if len(args) != 2 {
			return fmt.Errorf("usage: benchcmp -sweep SNAP.json")
		}
		return gateSweep(args[1])
	}
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: benchcmp [-obs|-sweep|-noise] [OLD.json] NEW.json")
	}
	newest, err := bench.LoadRateEngineReports(args[len(args)-1])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		old, err := bench.LoadRateEngineReports(args[0])
		if err != nil {
			return err
		}
		fmt.Print(bench.CompareRateEngine(old, newest))
	}
	if bad := bench.CheckTablesAtLeastExact(newest); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("tabulated kernels slower than exact in %d configuration(s)", len(bad))
	}
	fmt.Println("tables >= exact in every configuration")
	return nil
}

// gateObs applies the always-on observability budget to an obs-overhead
// snapshot.
func gateObs(path string) error {
	rep, err := bench.LoadObsOverheadReport(path)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-10s  %10.0f events/s  %+5.1f%% overhead\n", r.Mode, r.EventsPerSec, r.OverheadPct)
	}
	if bad := bench.CheckObsOverheadBudget(rep, obsBudgetPct); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("observability overhead gate failed (%d violation(s))", len(bad))
	}
	fmt.Printf("always-on observability under the %.0f%% budget, trajectories identical\n", obsBudgetPct)
	return nil
}

// gateNoise applies the recording budget to a noise-overhead snapshot
// — the gate behind `make noise-bench` and CI.
func gateNoise(path string) error {
	rep, err := bench.LoadNoiseOverheadReport(path)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-10s  %10.0f events/s  %+5.1f%% overhead\n", r.Mode, r.EventsPerSec, r.OverheadPct)
	}
	if bad := bench.CheckNoiseOverheadBudget(rep, noiseBudgetPct); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("noise recording gate failed (%d violation(s))", len(bad))
	}
	fmt.Printf("noise recording under the %.0f%% budget, trajectories identical\n", noiseBudgetPct)
	return nil
}

// gateSweep applies the amortized-sweep floors to a sweep-engine
// snapshot — the gate behind `make sweep-engine` and CI.
func gateSweep(path string) error {
	rep, err := bench.LoadSweepEngineReport(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s %dx%d map: amortized %.1f points/s, rebuild %.2f points/s (%.1fx)\n",
		rep.Benchmark, rep.GridX, rep.GridY,
		rep.AmortizedPointsPerSec, rep.RebuildPointsPerSec, rep.SpeedupX)
	fmt.Printf("%s refine depth %d: %d of %d lattice points simulated (%.1fx saving)\n",
		rep.RefineCircuit, rep.RefineDepth,
		rep.SimulatedPoints, rep.LatticePoints, rep.RefineSavingsX)
	if bad := bench.CheckSweepEngine(rep, sweepMinSpeedup, sweepMinSavings); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("sweep-engine floors violated (%d violation(s))", len(bad))
	}
	fmt.Printf("amortized sweep engine above its floors (%.0fx speedup, %.0fx refinement saving)\n",
		sweepMinSpeedup, sweepMinSavings)
	return nil
}
