// Command benchcmp diffs rate-engine benchmark snapshots and gates the
// kernel-table invariant.
//
// Usage:
//
//	benchcmp NEW.json           check one snapshot: tables >= exact
//	benchcmp OLD.json NEW.json  per-configuration speedup table, then
//	                            the same check on NEW.json
//
// With two files it prints old vs new events/s and the speedup for
// every (benchmark, mode, workers, kernel) configuration, matching rows
// across the single-report and report-array file formats. In both forms
// the exit status is the regression gate used by `make bench-compare`:
// nonzero if any configuration in the newest snapshot runs slower with
// tabulated kernels than with exact evaluation.
package main

import (
	"fmt"
	"os"

	"semsim/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: benchcmp [OLD.json] NEW.json")
	}
	newest, err := bench.LoadRateEngineReports(args[len(args)-1])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		old, err := bench.LoadRateEngineReports(args[0])
		if err != nil {
			return err
		}
		fmt.Print(bench.CompareRateEngine(old, newest))
	}
	if bad := bench.CheckTablesAtLeastExact(newest); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("tabulated kernels slower than exact in %d configuration(s)", len(bad))
	}
	fmt.Println("tables >= exact in every configuration")
	return nil
}
