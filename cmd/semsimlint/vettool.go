package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"semsim/internal/lint"
)

// vetConfig is the package description go vet hands an analysis tool
// (the x/tools unitchecker wire format). Only the fields this tool
// consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetToolMain analyzes the single package described by cfgFile and
// returns the process exit code: 0 clean, 2 findings, 1 internal error
// (mirroring unitchecker's contract with cmd/go).
func vetToolMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Facts are not used, but vet requires the output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if remapped, ok := cfg.ImportMap[path]; ok {
			path = remapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "semsimlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.RunPackage(lint.All(), fset, files, tpkg, info, cfg.ImportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
