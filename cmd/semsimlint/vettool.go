package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"semsim/internal/lint"
)

// vetConfig is the package description go vet hands an analysis tool
// (the x/tools unitchecker wire format). Only the fields this tool
// consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	ModulePath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetToolMain analyzes the single package described by cfgFile and
// returns the process exit code: 0 clean, 2 findings, 1 internal error
// (mirroring unitchecker's contract with cmd/go).
func vetToolMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// go vet also dispatches the tool over standard-library dependencies
	// (to collect their facts), but the project invariants are scoped to
	// this module: the standalone driver never analyzes the stdlib, and
	// analyzing it here would poison resume paths with fmt/os internals
	// (sync.Pool, finalizers) that cannot feed simulator state. Stdlib
	// packages are recognizable by their empty ModulePath; skip them,
	// leaving an empty .vetx — absence of facts means pure.
	if cfg.ModulePath == "" {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
				return 1
			}
		}
		return 0
	}

	// Rehydrate the facts the dependencies exported: go vet has already
	// run this tool over every dependency (VetxOnly mode) and hands us
	// their .vetx outputs keyed by import path.
	store := lint.NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		blob, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semsimlint: reading facts of %s: %v\n", path, err)
			return 1
		}
		if err := store.DecodeFacts(path, blob); err != nil {
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
	}

	// go vet requires the .vetx output to exist even when analysis is
	// skipped, so the typecheck-failure bailouts write an empty one.
	emptyVetx := func() int {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return emptyVetx()
			}
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if remapped, ok := cfg.ImportMap[path]; ok {
			path = remapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return emptyVetx()
		}
		fmt.Fprintf(os.Stderr, "semsimlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Even in VetxOnly mode (dependencies outside the vet patterns) the
	// analyzers must run: their job there is to export this package's
	// facts for downstream consumers; the diagnostics are suppressed.
	diags, err := lint.RunPackage(lint.All(), fset, files, tpkg, info, cfg.ImportPath, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		blob, err := store.EncodeFacts(cfg.ImportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "semsimlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
