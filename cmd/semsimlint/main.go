// Command semsimlint is the project's static-analysis multichecker: it
// runs the internal/lint passes (detrand, unitsafety, floateq,
// sharddiscipline, physerr, obsdiscipline) over the tree and exits
// non-zero on any
// finding. See DESIGN.md §7 for the analyzer catalogue.
//
// It runs in two modes:
//
//	semsimlint [-tags list] [-only a,b] [packages]   # standalone
//	go vet -vettool=$(which semsimlint) ./...        # vet tool
//
// Standalone mode loads and type-checks packages itself (offline, no
// tooling beyond the go command). Vet-tool mode implements the protocol
// go vet speaks to analysis tools (-V=full / -flags / vet.cfg), reusing
// vet's build graph, export data and caching.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semsim/internal/lint"
)

func main() {
	// Vet-tool protocol entry points, dispatched before flag parsing
	// because go vet controls the argument order.
	if len(os.Args) >= 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The version line doubles as vet's cache key for this tool.
			fmt.Printf("semsimlint version 1 buildID=%s\n", buildID())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg"):
			os.Exit(vetToolMain(os.Args[len(os.Args)-1]))
		}
	}

	tags := flag.String("tags", "", "build tags for package loading (comma-separated)")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := lint.Run(".", *tags, analyzers, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "semsimlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// buildID distinguishes tool versions for vet's result cache. The
// analyzer set and their rule constants are compiled in, so a content
// hash of the running binary would be ideal; the analyzer names plus
// doc strings are a cheap stable proxy that changes whenever a pass is
// added or its contract reworded.
func buildID() string {
	var sum uint64 = 1469598103934665603 // FNV-1a
	for _, a := range lint.All() {
		for _, s := range []string{a.Name, a.Doc} {
			for i := 0; i < len(s); i++ {
				sum ^= uint64(s[i])
				sum *= 1099511628211
			}
		}
	}
	return fmt.Sprintf("%016x", sum)
}
