// Command semsimlint is the project's static-analysis multichecker: it
// runs the internal/lint passes (detrand, unitsafety, floateq,
// sharddiscipline, physerr, obsdiscipline, doccomment, hotalloc,
// statecover, resumepurity) over the tree and exits non-zero on any
// finding. Passes exchange cross-package facts (serialization
// completeness, resume purity, global mutability) through a module-wide
// fact store threaded in dependency order. See DESIGN.md §7 and §12 for
// the analyzer catalogue and the facts engine.
//
// It runs in two modes:
//
//	semsimlint [-tags list] [-only a,b] [-json] [packages]   # standalone
//	go vet -vettool=$(which semsimlint) ./...                # vet tool
//
// Standalone mode loads and type-checks the module itself (offline, no
// tooling beyond the go command) and analyzes packages in dependency
// order over one shared fact store; -json switches the output to a
// machine-readable findings array for CI annotation. Vet-tool mode
// implements the protocol go vet speaks to analysis tools (-V=full /
// -flags / vet.cfg), reusing vet's build graph, export data and
// caching; facts travel between packages as gob-encoded .vetx files.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semsim/internal/lint"
)

func main() {
	// Vet-tool protocol entry points, dispatched before flag parsing
	// because go vet controls the argument order.
	if len(os.Args) >= 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The version line doubles as vet's cache key for this tool.
			// Bump the counter on driver-behavior changes the analyzer
			// doc-hash cannot see (fact protocol, package scoping).
			fmt.Printf("semsimlint version 2 buildID=%s\n", buildID())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg"):
			os.Exit(vetToolMain(os.Args[len(os.Args)-1]))
		}
	}

	tags := flag.String("tags", "", "build tags for package loading (comma-separated)")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (machine-readable; for CI annotation)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	run := lint.Run
	if *jsonOut {
		run = lint.RunJSON
	}
	n, err := run(".", *tags, analyzers, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "semsimlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// buildID distinguishes tool versions for vet's result cache. The
// analyzer set and their rule constants are compiled in, so a content
// hash of the running binary would be ideal; the analyzer names plus
// doc strings are a cheap stable proxy that changes whenever a pass is
// added or its contract reworded.
func buildID() string {
	var sum uint64 = 1469598103934665603 // FNV-1a
	for _, a := range lint.All() {
		for _, s := range []string{a.Name, a.Doc} {
			for i := 0; i < len(s); i++ {
				sum ^= uint64(s[i])
				sum *= 1099511628211
			}
		}
	}
	return fmt.Sprintf("%016x", sum)
}
