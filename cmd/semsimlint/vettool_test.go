package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolCrossPackageFacts proves the .vetx fact pipeline end to
// end under the real `go vet -vettool` protocol: a dependency package
// exports a PurityFact (wall-clock read), and the root package's
// restore path is flagged at the cross-package call site — which can
// only happen if vet ran this tool over the dependency in VetxOnly
// mode, the facts survived gob serialization, and the root's run
// rehydrated them from PackageVetx. It also re-proves the negative
// gate outside the fixture harness: an uncovered snapshot field is a
// finding.
func TestVetToolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "semsimlint")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building semsimlint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vetsmoke\n\ngo 1.22\n")
	write("clocks/clocks.go", `// Package clocks exports an impure helper.
package clocks

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("root/root.go", `// Package root registers a snapshot pair that is impure and leaky.
package root

import "vetsmoke/clocks"

// State is a snapshot root with an uncovered field.
//
//statecover:root save=Save load=Load
type State struct {
	T      float64
	Unsung int
}

// Save serializes T.
func (s *State) Save() float64 { return s.T }

// Load restores T, impurely.
func (s *State) Load(v float64) {
	s.T = v + float64(clocks.Stamp())
}
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a module with known findings; output:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "call to clocks.Stamp, which is not resume-pure") {
		t.Errorf("missing cross-package resumepurity finding (facts did not flow through .vetx); output:\n%s", text)
	}
	if !strings.Contains(text, "field Unsung of snapshot root State is neither serialized by Save nor rebuilt by Load") {
		t.Errorf("missing statecover finding; output:\n%s", text)
	}
}
