// Command logicsim simulates a gate-level logic netlist as
// single-electron nSET/pSET logic (the paper's large-scale circuit
// flow): it expands the gates, applies a step stimulus to one input,
// runs the Monte Carlo solver, and reports logic levels, the output
// waveform and the propagation delay.
//
// Usage:
//
//	logicsim [flags] circuit.logic
//
// The netlist format is one gate per line ("y = NAND a b"; kinds INV,
// BUF, NAND, NOR, AND, OR, XOR), with "input"/"output" declarations;
// see `go run ./cmd/benchgen c432` for a large example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"semsim"
	"semsim/internal/bench"
	"semsim/internal/jobs"
	"semsim/internal/obs"
)

var (
	toggle    = flag.String("toggle", "", "input to step 0 -> Vdd mid-run (default: first input)")
	high      = flag.String("high", "", "comma-separated inputs tied to logic high")
	watch     = flag.String("watch", "", "output wire to time (default: first output)")
	temp      = flag.Float64("temp", bench.WorkloadTemp, "temperature in kelvin")
	seed      = flag.Uint64("seed", 1, "Monte Carlo seed")
	adaptive  = flag.Bool("adaptive", false, "use the adaptive solver")
	sparse    = flag.Bool("sparse", false, "use the sparse locality-aware potential engine (bit-identical to dense at -cinv-eps 0)")
	cinvEps   = flag.Float64("cinv-eps", 0, "truncate C^-1 rows at eps*rowmax; implies -sparse and skips the dense inverse entirely")
	vcdPath   = flag.String("vcd", "", "write the watched waveform as VCD to this file")
	ckptPath  = flag.String("checkpoint", "", "persist periodic atomic snapshots of the run to this file (crash-safe)")
	ckptEvery = flag.Int("checkpoint-every", 0, "target events between snapshots (0 = default; rounded up to the solver refresh period)")
	resume    = flag.Bool("resume", false, "continue from the -checkpoint file (bit-identical to an uninterrupted run)")
	obsAddr   = flag.String("obs-addr", "", "serve live metrics, trace and pprof on this address (e.g. :6060)")
	traceFile = flag.String("trace", "", "write a Chrome trace_event journal of the run to this file")
	progress  = flag.Bool("progress", false, "print periodic progress lines to stderr")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: logicsim [flags] circuit.logic")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := semsim.ParseLogic(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(nl.Inputs) == 0 || len(nl.Outputs) == 0 {
		fatal(fmt.Errorf("netlist needs at least one input and one output"))
	}

	tog := *toggle
	if tog == "" {
		tog = nl.Inputs[0]
	}
	out := *watch
	if out == "" {
		out = nl.Outputs[0]
	}
	highSet := map[string]bool{}
	for _, h := range strings.Split(*high, ",") {
		if h != "" {
			highSet[h] = true
		}
	}

	p := semsim.DefaultLogicParams()
	vdd := p.Vdd()
	drive := map[string]semsim.Source{}
	assign := map[string]bool{}
	for _, in := range nl.Inputs {
		level := 0.0
		assign[in] = false
		if highSet[in] {
			level = vdd
			assign[in] = true
		}
		drive[in] = semsim.DC(level)
	}
	const stepAt = bench.SettleTime
	drive[tog] = semsim.PWL{T: []float64{0, stepAt, stepAt + bench.StepRamp}, Volt: []float64{0, 0, vdd}}

	bo := semsim.BuildOptions{SparsePotentials: *sparse || *cinvEps > 0, CinvTruncation: *cinvEps}
	ex, err := semsim.ExpandLogicWith(nl, p, drive, bo)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d gates -> %d SETs, %d junctions, Vdd = %.2f mV, T = %g K\n",
		nl.Name, len(nl.Gates), ex.NumSETs, ex.Circuit.NumJunctions(), vdd*1e3, *temp)

	// Expected boolean values for the post-step assignment.
	assign[tog] = true
	want, err := nl.Eval(assign)
	if err != nil {
		fatal(err)
	}

	stopObs, err := obs.StartCLI(obs.CLIConfig{
		Addr: *obsAddr, TraceFile: *traceFile, Progress: *progress,
		TargetSim: stepAt + bench.ObserveFor,
	})
	if err != nil {
		fatal(err)
	}
	defer stopObs()

	sim, err := semsim.NewSim(ex.Circuit, semsim.Options{
		Temp: *temp, Seed: *seed, Adaptive: *adaptive,
		SparsePotentials: bo.SparsePotentials, CinvTruncation: bo.CinvTruncation,
	})
	if err != nil {
		fatal(err)
	}
	outNode := ex.Wire[out]
	sim.AddProbe(outNode)

	if *resume {
		if *ckptPath == "" {
			fatal(fmt.Errorf("-resume needs -checkpoint"))
		}
		cp, err := jobs.LoadSim(*ckptPath)
		if err != nil {
			fatal(err)
		}
		if err := sim.Restore(cp); err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s: %d events, t = %.3f us\n",
			*ckptPath, sim.Stats().Events, sim.Time()*1e6)
	}

	// With a checkpoint file configured, SIGINT/SIGTERM drains: the run
	// persists a final snapshot at its next refresh boundary and exits
	// resumable instead of losing the progress.
	runCtx := context.Background()
	var ck *jobs.Checkpointer
	if *ckptPath != "" {
		ck = &jobs.Checkpointer{Path: *ckptPath, Every: *ckptEvery}
		var cancel context.CancelFunc
		runCtx, cancel = signal.NotifyContext(runCtx, syscall.SIGINT, syscall.SIGTERM)
		defer cancel()
	}
	_, err = jobs.RunSim(runCtx, sim, 0, stepAt+bench.ObserveFor, ck)
	if errors.Is(err, jobs.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "logicsim: interrupted at %d events; resume with -checkpoint %s -resume\n",
			sim.Stats().Events, *ckptPath)
		os.Exit(3)
	}
	if err != nil && err != semsim.ErrBlockaded {
		fatal(err)
	}

	// Final logic levels of all declared outputs, checked against the
	// boolean evaluation.
	fmt.Println("\nfinal output levels:")
	var names []string
	names = append(names, nl.Outputs...)
	sort.Strings(names)
	thr := ex.LogicThreshold()
	for _, o := range names {
		v := sim.Potential(ex.Wire[o])
		got := v > thr
		mark := "OK"
		if got != want[o] {
			mark = "MISMATCH"
		}
		fmt.Printf("  %-12s %7.2f mV  logic %v (expected %v) %s\n", o, v*1e3, got, want[o], mark)
	}

	d, err := semsim.PropagationDelay(sim.Waveform(outNode), stepAt+bench.StepRamp, thr, 20e-9, want[out])
	if err != nil {
		fmt.Printf("\nno %s transition observed after the step (%v)\n", out, err)
	} else {
		fmt.Printf("\npropagation delay to %s: %.1f ns\n", out, d*1e9)
	}
	st := sim.Stats()
	fmt.Printf("%d tunnel events, %.1f rate calcs/event, simulated %.2f us\n",
		st.Events, float64(st.RateCalcs)/float64(st.Events), sim.Time()*1e6)

	if *vcdPath != "" {
		vf, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		err = semsim.WriteVCD(vf, "logicsim", []semsim.VCDSignal{{
			Name:      out,
			Threshold: thr,
			Samples:   sim.Waveform(outNode),
		}})
		if err != nil {
			fatal(err)
		}
		if err := vf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *vcdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logicsim:", err)
	os.Exit(1)
}
