// Command benchgen lists the paper's 15 logic benchmarks and can emit
// any of them as a gate-level netlist for inspection or external use.
//
// Usage:
//
//	benchgen            # table of all benchmarks
//	benchgen c432       # print the c432 gate netlist
package main

import (
	"fmt"
	"os"

	"semsim"
)

func main() {
	if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgen [name]")
		os.Exit(2)
	}
	if len(os.Args) == 2 {
		emit(os.Args[1])
		return
	}
	fmt.Printf("%-18s %10s %8s %8s %8s\n", "benchmark", "junctions", "SETs", "gates", "inputs")
	for _, b := range semsim.Benchmarks() {
		fmt.Printf("%-18s %10d %8d %8d %8d\n",
			b.Name, b.Netlist.NumJunctions(), b.Netlist.NumSETs(),
			len(b.Netlist.Gates), len(b.Netlist.Inputs))
	}
}

func emit(name string) {
	b, ok := semsim.BenchmarkByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q\n", name)
		os.Exit(1)
	}
	fmt.Printf("name %s\n", b.Name)
	fmt.Print("input")
	for _, in := range b.Netlist.Inputs {
		fmt.Printf(" %s", in)
	}
	fmt.Println()
	fmt.Print("output")
	for _, out := range b.Netlist.Outputs {
		fmt.Printf(" %s", out)
	}
	fmt.Println()
	for _, g := range b.Netlist.Gates {
		fmt.Printf("%s = %s", g.Out, g.Kind)
		for _, in := range g.In {
			fmt.Printf(" %s", in)
		}
		fmt.Println()
	}
}
