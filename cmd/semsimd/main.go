// Command semsimd is the batch simulation daemon: it accepts input
// decks over an HTTP JSON API, fans each deck out into independent
// (sweep point, run) tasks on a bounded worker pool, checkpoints every
// run periodically (atomic write-temp-and-rename files), and resumes
// interrupted work bit-identically — a deck resubmitted after a crash
// or drain picks up exactly where its checkpoints left off.
//
// Usage:
//
//	semsimd [-addr :8723] [-dir semsimd-data] [-workers n] [flags]
//
// API (see docs/DECK.md for the deck format):
//
//	POST /api/v1/jobs             {"deck": "...", "overrides": {...}}
//	GET  /api/v1/jobs             list all jobs
//	GET  /api/v1/jobs/{id}        job status
//	GET  /api/v1/jobs/{id}/result folded sweep points (when done)
//	POST /api/v1/jobs/{id}/cancel abort a job
//	GET  /api/v1/jobs/{id}/events live progress (Server-Sent Events; also /jobs/{id}/events)
//	GET  /api/v1/jobs/{id}/trace  merged per-worker Chrome trace (also /jobs/{id}/trace)
//	GET  /healthz                 liveness
//	GET  /metrics /trace /heatmap /debug/pprof/   observability
//
// /metrics content-negotiates: the stable JSON snapshot by default, the
// Prometheus text exposition for scrapers (Accept: text/plain or
// ?format=prometheus).
//
// On SIGINT/SIGTERM the daemon drains gracefully: no new tasks start,
// in-flight runs persist a final checkpoint at their next refresh
// boundary, event streams deliver their jobs' terminal states, the
// journal sink and final metrics snapshot are flushed, and only then
// does the listener close — all bounded by -drain-timeout. A second
// signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semsim/internal/jobs"
	"semsim/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8723", "HTTP listen address")
	dir := flag.String("dir", "semsimd-data", "checkpoint directory (created if missing; empty disables crash-safety)")
	workers := flag.Int("workers", 0, "concurrent (point, run) tasks across all jobs (0 = GOMAXPROCS)")
	every := flag.Int("checkpoint-every", 0, "target events between checkpoints (0 = default; rounded up to the solver refresh period)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock timeout (0 = unlimited)")
	retries := flag.Int("retries", 0, "retries per task for transient failures (0 = default of 2, negative disables)")
	resultCache := flag.Bool("result-cache", false, "keep per-task done markers after jobs finish so identical decks resubmitted later reuse completed results (needs -dir)")
	fanoWindow := flag.Float64("fano-window", 0, "default counting-window width in seconds for noise-recording decks whose submission sets none (0 = deck windows / auto calibration)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a graceful shutdown may take before aborting")
	traceOn := flag.Bool("trace-journal", false, "record the run journal (served at /trace)")
	traceJSONL := flag.String("trace-jsonl", "", "additionally append every journal event to this JSONL file (implies -trace-journal)")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot to this file on shutdown")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: semsimd [-addr :8723] [-dir semsimd-data] [-workers n] [-checkpoint-every n] [-job-timeout d] [-retries n] [-result-cache] [-drain-timeout d] [-trace-journal] [-trace-jsonl f] [-metrics-out f]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
	}

	cfg := obs.Config{Trace: *traceOn}
	var jsonl *os.File
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		jsonl = f
		cfg.Trace = true
		cfg.TraceJSONL = f
	}
	o := obs.New(cfg)
	obs.SetGlobal(o)

	engine := jobs.NewEngine(jobs.EngineConfig{
		Workers:         *workers,
		CheckpointDir:   *dir,
		CheckpointEvery: *every,
		JobTimeout:      *jobTimeout,
		MaxRetries:      *retries,
		ResultCache:     *resultCache,
		FanoWindow:      *fanoWindow,
		Obs:             o,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: jobs.NewHandler(engine, o)}
	fmt.Fprintf(os.Stderr, "semsimd: listening on %s (checkpoints in %q)\n", ln.Addr(), *dir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "semsimd: %v — draining (checkpointing in-flight runs; signal again to abort)\n", sig)
	}

	// Shutdown ordering matters: drain the engine first (every job
	// reaches a terminal state, so /jobs/{id}/events streams deliver it
	// and end), then flush the journal sink and write the final metrics
	// snapshot — both must land before the listener closes, or a drain
	// racing a crash-loop supervisor loses the tail of the journal — and
	// close the listener last. A second signal (or the drain timeout)
	// aborts the drain.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "semsimd: aborting")
		cancel()
	}()
	drainErr := engine.Shutdown(shutCtx)
	if j := o.Journal(); j != nil {
		if err := j.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "semsimd: journal flush:", err)
		}
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "semsimd: journal close:", err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut, o); err != nil {
			fmt.Fprintln(os.Stderr, "semsimd: metrics snapshot:", err)
		}
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "semsimd:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "semsimd: drain incomplete:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "semsimd: drained cleanly")
}

// writeMetricsSnapshot persists the registry's stable JSON snapshot.
func writeMetricsSnapshot(path string, o *obs.Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Registry().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semsimd:", err)
	os.Exit(1)
}
