// Command semsim runs a single-electron circuit simulation from a
// SPICE-like input deck (the paper's Example Input File 1 dialect) and
// prints the recorded junction currents, one row per sweep point.
//
// Usage:
//
//	semsim [-o out.dat] input.cir
//	semsim < input.cir
//
// Output columns: the swept source value (volts) followed by the
// time-averaged current (amperes) of each recorded junction. Decks
// with `record noise` / `record fano` directives additionally get the
// folded Fano factor (with its cross-run standard error) and one
// spectral-density column per requested ω. Lines starting with '#'
// describe the run.
//
// With -follow URL the command instead attaches to a job running on a
// semsimd daemon and renders its live event stream (progress, task
// completions, checkpoints, retries) until the job ends:
//
//	semsim -follow http://localhost:8723/api/v1/jobs/j000001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"semsim"
	"semsim/internal/jobs"
	"semsim/internal/obs"
)

func main() {
	out := flag.String("o", "", "write results to this file instead of stdout")
	parallel := flag.Int("parallel", 0, "within-run rate-engine workers (0 = GOMAXPROCS, 1 = serial; bit-identical either way)")
	rateTables := flag.Bool("rate-tables", false, "evaluate normal-state rates through error-bounded interpolation tables (<1e-6 relative error)")
	sparse := flag.Bool("sparse", false, "use the sparse locality-aware potential engine (bit-identical to dense at -cinv-eps 0)")
	cinvEps := flag.Float64("cinv-eps", 0, "truncate C^-1 rows at eps*rowmax (implies -sparse; solver tracks a provable error bound)")
	fanoWindow := flag.Float64("fano-window", 0, "fix the noise counting-window width in seconds, overriding deck windows and the auto calibration (never changes the trajectory)")
	ckptDir := flag.String("checkpoint-dir", "", "persist periodic atomic checkpoints of every run in this directory (crash-safe; created if missing)")
	ckptEvery := flag.Int("checkpoint-every", 0, "target events between checkpoints (0 = default; rounded up to the solver refresh period)")
	resume := flag.Bool("resume", false, "continue from checkpoints found in -checkpoint-dir (bit-identical to an uninterrupted run)")
	deckWorkers := flag.Int("workers", 1, "concurrent (point, run) tasks (results are bit-identical at any value)")
	obsAddr := flag.String("obs-addr", "", "serve live metrics, trace and pprof on this address (e.g. :6060)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event journal of the run to this file")
	progress := flag.Bool("progress", false, "print periodic progress lines to stderr")
	follow := flag.String("follow", "", "stream a semsimd job's live events instead of running a deck (job URL, e.g. http://host:8723/api/v1/jobs/j000001)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: semsim [-o out.dat] [-parallel n] [-rate-tables] [-sparse] [-cinv-eps e] [-checkpoint-dir d] [-resume] [-workers n] [-obs-addr :6060] [-trace run.json] [-progress] [input.cir]\n       semsim -follow http://host:8723/api/v1/jobs/{id}\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *follow != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := jobs.Follow(ctx, *follow, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	stopObs, err := obs.StartCLI(obs.CLIConfig{Addr: *obsAddr, TraceFile: *traceFile, Progress: *progress})
	if err != nil {
		fatal(err)
	}
	defer stopObs()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	deck, err := semsim.ParseNetlist(in)
	if err != nil {
		fatal(err)
	}
	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
	}
	// With checkpointing on, the first SIGINT/SIGTERM drains: in-flight
	// runs persist a final snapshot at their next refresh boundary and
	// the process exits resumable. A second signal kills immediately.
	stop := make(chan struct{})
	if *ckptDir != "" {
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			fmt.Fprintln(os.Stderr, "semsim: checkpointing and stopping (signal again to abort)")
			close(stop)
			<-sigs
			os.Exit(1)
		}()
	}
	pts, err := semsim.RunDeckCtx(context.Background(), deck, semsim.DeckOverrides{
		Parallel:   *parallel,
		RateTables: *rateTables,
		Sparse:     *sparse,
		CinvEps:    *cinvEps,
		FanoWindow: *fanoWindow,
	}, semsim.DeckRunConfig{
		Dir:     *ckptDir,
		Every:   *ckptEvery,
		Resume:  *resume,
		Workers: *deckWorkers,
		Stop:    stop,
	})
	if errors.Is(err, semsim.ErrDeckInterrupted) {
		fmt.Fprintf(os.Stderr, "semsim: interrupted; resume with: semsim -checkpoint-dir %s -resume %s\n", *ckptDir, name)
		os.Exit(3)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var juncs []int
	if len(pts) > 0 {
		for j := range pts[0].Current {
			juncs = append(juncs, j)
		}
		sort.Ints(juncs)
	}
	// Noise columns come from the deck's record noise/fano directives
	// (not from the result points) so the layout is stable even when
	// some points are fully blockaded: F and its standard error per
	// noise-recorded junction, then one S column per requested ω.
	type noiseCol struct {
		j      int
		omegas []float64
	}
	var ncols []noiseCol
	{
		seen := map[int]bool{}
		for _, ns := range deck.Spec.NoiseJuncs {
			seen[ns.Junc] = true
			ncols = append(ncols, noiseCol{j: ns.Junc, omegas: ns.Omegas})
		}
		for _, fs := range deck.Spec.FanoJuncs {
			if !seen[fs.Junc] {
				seen[fs.Junc] = true
				ncols = append(ncols, noiseCol{j: fs.Junc})
			}
		}
	}
	fmt.Fprintf(w, "# semsim run of %s\n", name)
	fmt.Fprintf(w, "# temp=%g K adaptive=%v cotunnel=%v jumps=%d\n",
		deck.Spec.Temp, deck.Spec.Adaptive, deck.Spec.Cotunnel, deck.Spec.Jumps)
	for _, nc := range ncols {
		if len(nc.omegas) > 0 {
			fmt.Fprintf(w, "# noise junc%d omegas [rad/s]:", nc.j)
			for _, om := range nc.omegas {
				fmt.Fprintf(w, " %g", om)
			}
			fmt.Fprintln(w)
		}
	}
	isMap := deck.Spec.Map != nil
	if isMap {
		fmt.Fprintf(w, "# columns: Vx Vy")
	} else {
		fmt.Fprintf(w, "# columns: Vsweep")
	}
	for _, j := range juncs {
		fmt.Fprintf(w, " I(junc%d)", j)
	}
	for _, nc := range ncols {
		fmt.Fprintf(w, " F(junc%d) dF(junc%d)", nc.j, nc.j)
		for k := range nc.omegas {
			fmt.Fprintf(w, " S(junc%d,w%d)", nc.j, k)
		}
	}
	fmt.Fprintln(w)
	for _, p := range pts {
		fmt.Fprintf(w, "%.8g", p.SweepV)
		if isMap {
			fmt.Fprintf(w, " %.8g", p.Y)
		}
		for _, j := range juncs {
			fmt.Fprintf(w, " %.6e", p.Current[j])
		}
		for _, nc := range ncols {
			st := p.Noise[nc.j]
			fmt.Fprintf(w, " %.6e %.6e", st.Fano, st.FanoErr)
			for k := range nc.omegas {
				v := math.NaN()
				if k < len(st.S) {
					v = st.S[k]
				}
				fmt.Fprintf(w, " %.6e", v)
			}
		}
		if p.Blockaded {
			fmt.Fprintf(w, " # blockaded")
		}
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semsim:", err)
	os.Exit(1)
}
