package main

import (
	"fmt"
	"math"

	"semsim"
	"semsim/internal/cotunnel"
	"semsim/internal/super"
	"semsim/internal/units"
)

// validate reproduces the Section IV-A single-device validations, using
// our exact master-equation solver and analytic limits as the stand-ins
// for the experimental data and SIMON results the paper compares with
// (see DESIGN.md, substitutions).
func validate() error {
	f, done := datFile("validate.dat")
	defer done()

	// V1: Monte Carlo vs master equation on the paper's SET.
	fmt.Println("V1: sequential tunneling — Monte Carlo vs master equation")
	fmt.Fprintln(f, "# V1: Vds Vg I_MC(A) I_ME(A) err(%)")
	events := uint64(120000)
	if *quick {
		events = 20000
	}
	worst := 0.0
	for _, tc := range []struct{ vds, vg float64 }{
		{0.040, 0.000}, {0.040, 0.009}, {0.020, 0.0267}, {0.060, 0.005}, {-0.040, 0.013},
	} {
		mk := func() (*semsim.Circuit, semsim.SETNodes) {
			return semsim.NewSET(semsim.SETConfig{
				R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18,
				Vs: tc.vds / 2, Vd: -tc.vds / 2, Vg: tc.vg,
			})
		}
		cME, _ := mk()
		ref, err := semsim.MasterSolve(cME, 5, -8, 8)
		if err != nil {
			return err
		}
		cMC, nd := mk()
		s, err := semsim.NewSim(cMC, semsim.Options{Temp: 5, Seed: 41})
		if err != nil {
			return err
		}
		if _, err := s.Run(events/5, 0); err != nil {
			return err
		}
		s.ResetMeasurement()
		if _, err := s.Run(events, 0); err != nil {
			return err
		}
		iMC := s.JunctionCurrent(nd.JuncDrain)
		iME := ref.Current[1]
		errPct := 100 * math.Abs(iMC-iME) / math.Abs(iME)
		if errPct > worst {
			worst = errPct
		}
		fmt.Printf("  Vds=%+7.3f Vg=%6.4f: MC %+.4e  ME %+.4e  err %5.2f%%\n", tc.vds, tc.vg, iMC, iME, errPct)
		fmt.Fprintf(f, "%g %g %e %e %.3f\n", tc.vds, tc.vg, iMC, iME, errPct)
	}
	fmt.Printf("  worst error %.2f%% (statistical; paper reports 'excellent agreement')\n", worst)

	// V2: cotunneling inside the blockade vs the analytic V^3 law.
	fmt.Println("V2: inelastic cotunneling — MC vs analytic cubic law")
	fmt.Fprintln(f, "# V2: Vds I_MC(A) I_analytic(A) ratio")
	cotEvents := uint64(4000)
	if *quick {
		cotEvents = 1000
	}
	for _, frac := range []float64{0.3, 0.45, 0.6} {
		vth := units.E / (5e-18) // e/Csum
		vds := frac * vth
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18,
			Vs: vds / 2, Vd: -vds / 2,
		})
		s, err := semsim.NewSim(c, semsim.Options{Temp: 0.05, Seed: 43, Cotunneling: true})
		if err != nil {
			return err
		}
		if _, err := s.Run(cotEvents/5, 0); err != nil && err != semsim.ErrBlockaded {
			return err
		}
		s.ResetMeasurement()
		if _, err := s.Run(cotEvents, 0); err != nil && err != semsim.ErrBlockaded {
			return err
		}
		iMC := s.JunctionCurrent(nd.JuncDrain)
		// Analytic zero-temperature law with the virtual-state costs of
		// the blockaded symmetric SET at this bias.
		v := c.IslandPotentials(nil, []int{0}, 0)
		e1 := c.DeltaWElectron(nd.Drain, nd.Island, -vds/2, v[0])
		e2 := c.DeltaWElectron(nd.Island, nd.Source, v[0], vds/2)
		iAn := cotunnel.CurrentT0(vds, e1, e2, 1e6, 1e6)
		fmt.Printf("  Vds=%6.2f mV: MC %.3e  analytic %.3e  ratio %.2f\n", vds*1e3, iMC, iAn, iMC/iAn)
		fmt.Fprintf(f, "%g %e %e %.3f\n", vds, iMC, iAn, iMC/iAn)
	}

	// V3: superconducting features — gap-edge step height and JQP peak.
	fmt.Println("V3: superconducting features")
	d := units.MeV(0.21)
	step := super.Iqp(1.02*2*d/units.E, 210e3, d, d, 0.05)
	want := math.Pi * d / (2 * units.E * 210e3)
	fmt.Printf("  quasi-particle current just above 2*Delta: %.3e A (theory pi*Delta/2eR = %.3e, ratio %.2f)\n",
		step, want, step/want)
	fmt.Fprintf(f, "# V3 gap-step %e %e %.3f\n", step, want, step/want)

	jqpEvents := uint64(15000)
	if *quick {
		jqpEvents = 4000
	}
	ssetI := func(vb float64) (float64, uint64, error) {
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 210e3, C1: 110e-18, R2: 210e3, C2: 110e-18, Cg: 14e-18,
			Vs: vb, Vd: 0, Vg: 0.002, Qb: 0.65 * units.E,
			Super: semsim.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4},
		})
		s, err := semsim.NewSim(c, semsim.Options{Temp: 0.52, Seed: 22})
		if err != nil {
			return 0, 0, err
		}
		if _, err := s.Run(jqpEvents/5, 0); err != nil && err != semsim.ErrBlockaded {
			return 0, 0, err
		}
		s.ResetMeasurement()
		if _, err := s.Run(jqpEvents, 1e-3); err != nil && err != semsim.ErrBlockaded {
			return 0, 0, err
		}
		return s.JunctionCurrent(nd.JuncDrain), s.Stats().CooperEvents, nil
	}
	iBefore, _, err := ssetI(0.9e-3)
	if err != nil {
		return err
	}
	iPeak, coop, err := ssetI(1.1e-3)
	if err != nil {
		return err
	}
	iAfter, _, err := ssetI(1.2e-3)
	if err != nil {
		return err
	}
	fmt.Printf("  JQP resonance at Vg=2 mV: I(0.9mV)=%.2e  I(1.1mV)=%.2e (%d Cooper events)  I(1.2mV)=%.2e\n",
		iBefore, iPeak, coop, iAfter)
	fmt.Fprintf(f, "# V3 jqp %e %e %e %d\n", iBefore, iPeak, iAfter, coop)
	if iPeak > iBefore && iPeak > iAfter && coop > 0 {
		fmt.Println("  JQP peak confirmed (local maximum sustained by Cooper-pair tunneling)")
	} else {
		fmt.Println("  WARNING: JQP peak not resolved at this event budget")
	}

	// DJQP: at the gate degeneracy point of a symmetric SSET, theory
	// places the double-JQP resonance at Vds = 2 Ec / e, with Cooper
	// pairs alternating through BOTH junctions (paper Fig. 2).
	djqp := func(vb float64) (float64, uint64, uint64, error) {
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 210e3, C1: 110e-18, R2: 210e3, C2: 110e-18, Cg: 14e-18,
			Vs: vb / 2, Vd: -vb / 2, Vg: units.E / (2 * 14e-18),
			Super: semsim.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4},
		})
		s, err := semsim.NewSim(c, semsim.Options{Temp: 0.52, Seed: 5})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := s.Run(jqpEvents/5, 0); err != nil && err != semsim.ErrBlockaded {
			return 0, 0, 0, err
		}
		s.ResetMeasurement()
		if _, err := s.Run(jqpEvents, 1e-3); err != nil && err != semsim.ErrBlockaded {
			return 0, 0, 0, err
		}
		return s.JunctionCurrent(nd.JuncDrain),
			s.JunctionCooperEvents(nd.JuncSource), s.JunctionCooperEvents(nd.JuncDrain), nil
	}
	const vDJQP = 0.70e-3 // 2 Ec / e = 0.684 mV for Csum = 234 aF
	iD, cp1, cp2, err := djqp(vDJQP)
	if err != nil {
		return err
	}
	iDlo, _, _, err := djqp(vDJQP - 0.15e-3)
	if err != nil {
		return err
	}
	iDhi, _, _, err := djqp(vDJQP + 0.15e-3)
	if err != nil {
		return err
	}
	fmt.Printf("  DJQP at gate degeneracy: I(0.55mV)=%.2e  I(0.70mV)=%.2e  I(0.85mV)=%.2e;"+
		" Cooper pairs per junction %d / %d\n", iDlo, iD, iDhi, cp1, cp2)
	fmt.Fprintf(f, "# V3 djqp %e %e %e %d %d\n", iDlo, iD, iDhi, cp1, cp2)
	if iD > iDlo && iD > iDhi && cp1 > 0 && cp2 > 0 {
		fmt.Println("  DJQP resonance confirmed at 2Ec/e with balanced two-junction Cooper-pair transport")
	} else {
		fmt.Println("  WARNING: DJQP resonance not resolved at this event budget")
	}
	return nil
}
