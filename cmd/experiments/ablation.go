package main

import (
	"fmt"
	"math"

	"semsim"
	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// ablation quantifies the adaptive solver's two knobs on a mid-size
// benchmark: the testing-factor threshold alpha (accuracy vs rate
// calculations) and the periodic refresh interval. The paper fixes
// both implicitly; this table is the evidence for the defaults.
func ablation() error {
	const benchName = "74LS153"
	b, ok := bench.ByName(benchName)
	if !ok {
		return fmt.Errorf("missing benchmark %s", benchName)
	}
	p := logicnet.DefaultParams()
	ex, err := bench.BuildWorkload(b, p)
	if err != nil {
		return err
	}
	seeds := *seeds
	if *quick && seeds > 3 {
		seeds = 3
	}

	ref, _, err := bench.MeanDelayOn(ex, b, semsim.Options{Temp: bench.WorkloadTemp, Seed: 300}, seeds)
	if err != nil {
		return err
	}
	fmt.Printf("%s, %d seeds; non-adaptive reference delay %.1f ns\n", benchName, seeds, ref*1e9)

	f, done := datFile("ablation.dat")
	defer done()
	fmt.Fprintf(f, "# adaptive-solver ablation on %s; reference delay %.4e s\n", benchName, ref)
	fmt.Fprintln(f, "# knob value delay(s) err(%) ratecalcs_per_event")

	measure := func(opt semsim.Options) (float64, float64) {
		d, _, err2 := bench.MeanDelayOn(ex, b, opt, seeds)
		if err2 != nil {
			err = err2
			return 0, 0
		}
		// One representative run for the cost metric.
		res, err2 := bench.MeasureDelayOn(ex, b, opt)
		if err2 != nil {
			err = err2
			return 0, 0
		}
		return d, float64(res.RateCalcs) / float64(res.Events)
	}

	fmt.Println("alpha sweep (refresh = default):")
	for _, alpha := range []float64{0.005, 0.02, 0.05, 0.2, 0.5} {
		d, cost := measure(semsim.Options{Temp: bench.WorkloadTemp, Seed: 300, Adaptive: true, Alpha: alpha})
		if err != nil {
			return err
		}
		errPct := 100 * math.Abs(d-ref) / ref
		fmt.Printf("  alpha=%-6g delay %7.1f ns  err %5.2f%%  %5.1f rate calcs/event\n",
			alpha, d*1e9, errPct, cost)
		fmt.Fprintf(f, "alpha %g %.4e %.2f %.1f\n", alpha, d, errPct, cost)
	}

	fmt.Println("refresh-interval sweep (alpha = 0.05):")
	for _, every := range []int{64, 256, 1024, 8192, 65536} {
		d, cost := measure(semsim.Options{Temp: bench.WorkloadTemp, Seed: 300, Adaptive: true, RefreshEvery: every})
		if err != nil {
			return err
		}
		errPct := 100 * math.Abs(d-ref) / ref
		fmt.Printf("  refresh=%-6d delay %7.1f ns  err %5.2f%%  %5.1f rate calcs/event\n",
			every, d*1e9, errPct, cost)
		fmt.Fprintf(f, "refresh %d %.4e %.2f %.1f\n", every, d, errPct, cost)
	}
	return nil
}
