package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
)

// Floors for the amortized sweep engine, shared with `benchcmp -sweep`:
// compile-once reuse must beat per-point rebuilding by at least 5x in
// points/second on a large-circuit map, and adaptive refinement must
// simulate at least 4x fewer points than the uniform fine lattice.
const (
	sweepMinSpeedup = 5.0
	sweepMinSavings = 4.0
)

// sweepEngine benchmarks the amortized million-point sweep engine and
// writes BENCH_sweep_engine.json: compile-once session throughput vs
// the per-point rebuild path on a 64x64 stability map of c1908 (6988
// junctions, sparse potentials), and adaptive-mesh-refinement savings
// vs a uniform fine lattice on a SET Coulomb-diamond map.
func sweepEngine() error {
	o := bench.SweepEngineOptions{
		Benchmark: "c1908",
		Sparse:    true,
		GridX:     64,
		GridY:     64,
		Events:    200,
		Warm:      50,
		// One per-point rebuild of c1908 costs minutes (netlist
		// expansion + sparse factorization), and the cost is
		// bias-independent, so two samples price the whole grid.
		RebuildSample: 2,
		Seed:          11,
		CoarseX:       9,
		CoarseY:       9,
		Depth:         4,
		Threshold:     0.1,
		RefineEvents:  2000,
	}
	if *quick {
		o.Benchmark, o.Sparse = "74LS153", false
		o.GridX, o.GridY = 12, 12
		o.RebuildSample = 4
		o.CoarseX, o.CoarseY, o.Depth = 5, 5, 2
		o.RefineEvents = 800
	}
	rep, err := bench.RunSweepEngine(o)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d junctions), %dx%d map, %d events/point, %d workers:\n",
		rep.Benchmark, rep.Junctions, rep.GridX, rep.GridY, rep.EventsPerPoint, rep.Workers)
	fmt.Printf("  amortized  %6d points  %8.2fs  %8.1f points/s\n",
		rep.AmortizedPoints, rep.AmortizedSeconds, rep.AmortizedPointsPerSec)
	fmt.Printf("  rebuild    %6d points  %8.2fs  %8.1f points/s\n",
		rep.RebuildPoints, rep.RebuildSeconds, rep.RebuildPointsPerSec)
	fmt.Printf("  speedup    %.1fx\n", rep.SpeedupX)
	fmt.Printf("%s refinement, %dx%d coarse, depth %d:\n",
		rep.RefineCircuit, rep.CoarseX, rep.CoarseY, rep.RefineDepth)
	fmt.Printf("  simulated  %d of %d lattice points (%.1fx saving, max interp err %.2f%% of range)\n",
		rep.SimulatedPoints, rep.LatticePoints, rep.RefineSavingsX, rep.RefineMaxErrPct)
	fmt.Printf("  refined    %8.2fs   uniform %8.2fs\n", rep.RefineSeconds, rep.UniformSeconds)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_sweep_engine.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// The amortized engine exists to make large maps cheap; a report
	// that had to be written below its floors is a regression, so the
	// generator fails loudly on it. The floors are calibrated for the
	// full configuration — a quick run's tiny lattice cannot structurally
	// reach them, so it only smoke-tests the machinery.
	if *quick {
		return nil
	}
	if bad := bench.CheckSweepEngine(rep, sweepMinSpeedup, sweepMinSavings); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("sweep-engine: %d floor(s) violated", len(bad))
	}
	return nil
}
