package main

import (
	"fmt"

	"semsim"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// fig1b regenerates the Fig. 1b I-V family: a normal-state SET with
// R1 = R2 = 1 MOhm, C1 = C2 = 1 aF, Cg = 3 aF at T = 5 K under a
// symmetric bias, for gate voltages 0, 10, 20 and 30 mV.
func fig1b() error {
	return ivFamily("fig1b.dat", semsim.SuperParams{}, 5.0, 0.04)
}

// fig1c is the superconducting counterpart (Fig. 1c): the same device
// at T = 50 mK with Delta(0) = 0.2 meV and Tc = 1.2 K. The suppressed
// region widens by the superconducting gap.
func fig1c() error {
	return ivFamily("fig1c.dat", semsim.SuperParams{GapAt0: units.MeV(0.2), Tc: 1.2}, 0.05, 0.04)
}

func ivFamily(file string, sp semsim.SuperParams, temp, vmax float64) error {
	gateVs := []float64{0, 0.01, 0.02, 0.03}
	nPts := 81
	events := uint64(40000)
	if *quick {
		nPts = 21
		events = 6000
	}
	xs := numeric.Linspace(-vmax, vmax, nPts)

	curves := make([][]semsim.SweepPoint, len(gateVs))
	for gi, vg := range gateVs {
		build := func(vds float64) (*semsim.Circuit, int, error) {
			c, nd := semsim.NewSET(semsim.SETConfig{
				R1: 1e6, C1: 1e-18, R2: 1e6, C2: 1e-18, Cg: 3e-18,
				Vs: vds / 2, Vd: -vds / 2, Vg: vg,
				Super: sp,
			})
			return c, nd.JuncDrain, nil
		}
		pts, err := semsim.IV(build, xs, semsim.SweepConfig{
			Options:    semsim.Options{Temp: temp, Seed: 1000 * uint64(gi)},
			WarmEvents: events / 5,
			Events:     events,
			MaxTime:    2e-3,
		})
		if err != nil {
			return err
		}
		curves[gi] = pts
	}

	f, done := datFile(file)
	defer done()
	fmt.Fprintf(f, "# SET I-V family, T=%g K", temp)
	if sp.Superconducting() {
		fmt.Fprintf(f, ", superconducting Delta(0)=%g meV Tc=%g K", units.ToMeV(sp.GapAt0), sp.Tc)
	}
	fmt.Fprintln(f)
	fmt.Fprint(f, "# Vds(V)")
	for _, vg := range gateVs {
		fmt.Fprintf(f, " I@Vg=%gV(A)", vg)
	}
	fmt.Fprintln(f)
	for i, x := range xs {
		fmt.Fprintf(f, "%+.6e", x)
		for gi := range gateVs {
			fmt.Fprintf(f, " %+.6e", curves[gi][i].I)
		}
		fmt.Fprintln(f)
	}

	// Console summary: blockade width per curve (span where |I| is
	// below 2% of the edge current).
	for gi, vg := range gateVs {
		edge := abs(curves[gi][len(xs)-1].I)
		lo, hi := 0.0, 0.0
		for _, p := range curves[gi] {
			if abs(p.I) < 0.02*edge {
				if lo == 0 {
					lo = p.X
				}
				hi = p.X
			}
		}
		fmt.Printf("Vg=%5.3f V: I(+%gmV)=%.3e A, suppressed region ~[%.1f, %.1f] mV\n",
			vg, vmax*1e3, curves[gi][len(xs)-1].I, lo*1e3, hi*1e3)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
