package main

import (
	"errors"
	"fmt"
	"math"

	"semsim"
	"semsim/internal/bench"
	"semsim/internal/logicnet"
	"semsim/internal/trace"
)

// fig7 regenerates the accuracy comparison: the propagation-delay error
// of the adaptive solver (averaged over -seeds Monte Carlo runs, paper
// uses nine) and of the SPICE baseline, both measured against the
// non-adaptive Monte Carlo reference. The paper reports 3.30% average
// for SEMSIM and 9.18% for SPICE (excluding its failing benchmarks).
func fig7() error {
	nSeeds := *seeds
	if *quick && nSeeds > 3 {
		nSeeds = 3
	}

	type row struct {
		name              string
		juncs             int
		refDelay, adDelay float64
		adErrPct          float64
		spiceDelay        float64
		spiceErrPct       float64
		spiceStatus       string
	}
	var rows []row
	p := logicnet.DefaultParams()

	for _, b := range bench.Suite() {
		if *only != "" && b.Name != *only {
			continue
		}
		if *maxJuncs > 0 && b.PublishedJunctions > *maxJuncs {
			fmt.Printf("%-18s skipped (> %d junctions)\n", b.Name, *maxJuncs)
			continue
		}
		ex, err := bench.BuildWorkload(b, p)
		if err != nil {
			return err
		}
		ref, nRef, err := bench.MeanDelayOn(ex, b, semsim.Options{Temp: bench.WorkloadTemp, Seed: 100}, nSeeds)
		if err != nil {
			return fmt.Errorf("%s reference: %w", b.Name, err)
		}
		ad, nAd, err := bench.MeanDelayOn(ex, b, semsim.Options{Temp: bench.WorkloadTemp, Seed: 100, Adaptive: true}, nSeeds)
		if err != nil {
			return fmt.Errorf("%s adaptive: %w", b.Name, err)
		}
		r := row{
			name:     b.Name,
			juncs:    b.PublishedJunctions,
			refDelay: ref,
			adDelay:  ad,
			adErrPct: 100 * math.Abs(ad-ref) / ref,
		}
		r.spiceDelay, r.spiceStatus = spiceDelay(ex, b)
		if r.spiceStatus == "" {
			r.spiceErrPct = 100 * math.Abs(r.spiceDelay-ref) / ref
		}
		rows = append(rows, r)
		fmt.Printf("%-18s %5dj  ref %7.2fns (%d runs)  adaptive %7.2fns (%d runs, err %5.2f%%)  spice %s\n",
			r.name, r.juncs, ref*1e9, nRef, ad*1e9, nAd, r.adErrPct, spiceDelayCell(r.spiceDelay, r.spiceErrPct, r.spiceStatus))
	}

	f, done := datFile("fig7.dat")
	defer done()
	fmt.Fprintln(f, "# Fig. 7: propagation-delay error vs the non-adaptive MC reference")
	fmt.Fprintln(f, "# benchmark junctions ref_delay(s) adaptive_delay(s) adaptive_err(%) spice_delay(s_or_-1) spice_err(%_or_-1) spice_status")
	sumAd, nOK := 0.0, 0
	sumSp, nSp := 0.0, 0
	for _, r := range rows {
		spD, spE, status := r.spiceDelay, r.spiceErrPct, r.spiceStatus
		if status == "" {
			status = "ok"
			sumSp += spE
			nSp++
		} else {
			spD, spE = -1, -1
		}
		sumAd += r.adErrPct
		nOK++
		fmt.Fprintf(f, "%s %d %.4e %.4e %.2f %.4e %.2f %s\n",
			r.name, r.juncs, r.refDelay, r.adDelay, r.adErrPct, spD, spE, status)
	}
	if nOK > 0 {
		fmt.Printf("average adaptive delay error: %.2f%% over %d benchmarks (paper: 3.30%%)\n", sumAd/float64(nOK), nOK)
		fmt.Fprintf(f, "# average_adaptive_error %.2f%%\n", sumAd/float64(nOK))
	}
	if nSp > 0 {
		fmt.Printf("average SPICE delay error:    %.2f%% over %d benchmarks (paper: 9.18%%)\n", sumSp/float64(nSp), nSp)
		fmt.Fprintf(f, "# average_spice_error %.2f%% over %d\n", sumSp/float64(nSp), nSp)
	}
	return nil
}

// spiceDelay measures the propagation delay with the compact-model
// transient, or reports why it could not.
func spiceDelay(ex *logicnet.Expanded, b bench.Benchmark) (float64, string) {
	sp, err := semsim.NewSpice(ex.Circuit, bench.WorkloadTemp)
	if err != nil {
		return 0, "unsupported"
	}
	sp.WallBudget = *spiceCap
	out := ex.Wire[b.OutputWire]
	sp.Probe(out)
	if err := sp.Run(bench.SettleTime+bench.ObserveFor, 0.5e-9); err != nil {
		switch {
		case errors.Is(err, semsim.ErrNoConvergence):
			return 0, "non-convergence"
		default:
			return 0, "budget"
		}
	}
	d, err := trace.PropagationDelay(sp.Waveform(out), bench.SettleTime+bench.StepRamp,
		ex.LogicThreshold(), 0, b.OutputRises)
	if err != nil {
		return 0, "incorrect-output"
	}
	return d, ""
}

func spiceDelayCell(d, errPct float64, status string) string {
	if status != "" {
		return "FAIL(" + status + ")"
	}
	return fmt.Sprintf("%7.2fns (err %5.2f%%)", d*1e9, errPct)
}
