package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// potentialEngine benchmarks the three potential backends — dense
// inverse, exact sparse rows, eps-truncated sparse rows — on the four
// largest suite circuits and writes BENCH_potential_engine.json: build
// cost, per-event shift and full-refresh micro timings, Monte Carlo
// events/sec, storage shape, and the truncated engine's measured error
// against its provable bound.
func potentialEngine() error {
	names, events := []string{"c432", "c1355", "c499", "c1908"}, uint64(4000)
	if *quick {
		names, events = []string{"74LS153"}, uint64(1000)
	}
	var reps []*bench.PotentialEngineReport
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("benchmark %s missing from suite", name)
		}
		rep, err := bench.RunPotentialEngine(b, logicnet.DefaultParams(), events, 11)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d junctions, %d islands):\n", rep.Benchmark, rep.Junctions, rep.Islands)
		for _, r := range rep.Runs {
			fmt.Printf("  %-12s build %8.2fs  nnz %9d  shift %9.0f ns  refresh %8.2f ms  %8.0f events/s",
				r.Engine, r.BuildSeconds, r.NNZ, r.ShiftNsPerOp, r.RefreshMsPerSolve, r.EventsPerSec)
			if r.Eps > 0 {
				fmt.Printf("  bound %.3g V (measured %.3g V)", r.ErrorBound, r.MaxAbsPotentialError)
			}
			fmt.Println()
		}
		fmt.Printf("  potential-update speedup dense/sparse-trunc: shift %.1fx, refresh %.1fx\n",
			rep.ShiftSpeedup, rep.RefreshSpeedup)
		reps = append(reps, rep)
	}
	data, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_potential_engine.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
