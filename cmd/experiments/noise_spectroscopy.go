package main

import (
	"fmt"
	"math"
	"strings"

	"semsim"
	"semsim/internal/units"
)

// noiseSpectroscopy validates the streaming noise/FCS engine end to
// end — deck text through RunDeck to folded statistics, the exact
// pipeline behind `semsim deck.txt` — against the three analytic
// anchors of SET shot noise (see DESIGN.md §15):
//
//	N1  a strongly asymmetric SET is rate-limited by one junction, so
//	    transfers are Poissonian: F = (Γ1²+Γ2²)/(Γ1+Γ2)² → 1.
//	N2  on the conduction plateau of a symmetric SET the two equal
//	    rates anticorrelate transfers: F → 1/2.
//	N3  the spectral density is white well above the inverse
//	    measurement time and below the tunnel rate, at the suppressed
//	    level S_I(ω) = 2eI·F.
//
// Results land in noise.dat for the regeneration map in EXPERIMENTS.md.
func noiseSpectroscopy() error {
	f, done := datFile("noise.dat")
	defer done()

	events, runs := 20000, 16
	if *quick {
		events, runs = 4000, 4
	}
	// Uniform grid ω_k = (k+1)·3e9 rad/s: ω·T ≫ 1 for the ~2e-8 s
	// measurement yet far under the ~5e11 /s junction rates, so every
	// point sits on the white plateau.
	const nOmega, w0 = 8, 3e9
	var grid strings.Builder
	for k := 0; k < nOmega; k++ {
		fmt.Fprintf(&grid, " %g", w0+float64(k)*w0)
	}

	set := func(g1 float64, noiseLine string) string {
		return fmt.Sprintf(`
junc 1 1 3 %g 1e-18
junc 2 2 3 1e-6 1e-18
cap 4 3 3e-18
vdc 1 0.1
vdc 2 -0.1
vdc 4 0
temp 0
%s
jumps %d %d
seed 1000
adaptive 0.05
`, g1, noiseLine, events, runs)
	}
	fano := func(deckText string) (fano, dfano, current float64, err error) {
		d, err := semsim.ParseNetlist(strings.NewReader(deckText))
		if err != nil {
			return 0, 0, 0, err
		}
		pts, err := semsim.RunDeck(d)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(pts) != 1 {
			return 0, 0, 0, fmt.Errorf("expected one operating point, got %d", len(pts))
		}
		st := pts[0].Noise[2]
		return st.Fano, st.FanoErr, pts[0].Current[2], nil
	}

	// N1/N2: Fano factor across tunnel-rate asymmetry. The drain
	// junction is fixed at 1 MΩ; the source junction sweeps from
	// matched to 1000x slower, carrying F from 1/2 up to 1.
	fmt.Println("N1/N2: Fano factor vs junction asymmetry (analytic (1+r²)/(1+r)², r = G1/G2)")
	fmt.Fprintln(f, "# N1/N2: G1(S) F dF F_analytic")
	for _, g1 := range []float64{1e-6, 3e-7, 1e-7, 1e-8, 1e-9} {
		fF, dF, _, err := fano(set(g1, "record fano 2"))
		if err != nil {
			return err
		}
		r := g1 / 1e-6
		want := (1 + r*r) / ((1 + r) * (1 + r))
		fmt.Printf("  G1=%8.0e S: F = %.3f ± %.3f  (analytic %.3f)\n", g1, fF, dF, want)
		fmt.Fprintf(f, "%g %.4f %.4f %.4f\n", g1, fF, dF, want)
	}

	// N3: white spectral tail of the symmetric SET at the suppressed
	// level 2eI·F.
	d, err := semsim.ParseNetlist(strings.NewReader(set(1e-6, "record noise 2"+grid.String())))
	if err != nil {
		return err
	}
	pts, err := semsim.RunDeck(d)
	if err != nil {
		return err
	}
	st := pts[0].Noise[2]
	current := math.Abs(pts[0].Current[2])
	want := 2 * units.E * current * st.Fano
	fmt.Printf("N3: S_I(omega) white tail vs 2eI*F = %.3e A^2/Hz (I = %.3e A, F = %.3f)\n", want, current, st.Fano)
	fmt.Fprintln(f, "# N3: omega(rad/s) S_I(A^2/Hz) 2eIF(A^2/Hz)")
	var band float64
	for k, s := range st.S {
		band += s
		fmt.Fprintf(f, "%g %e %e\n", w0+float64(k)*w0, s, want)
	}
	band /= float64(len(st.S))
	fmt.Printf("    band average %.3e A^2/Hz (ratio to 2eI*F: %.2f)\n", band, band/want)
	return nil
}
