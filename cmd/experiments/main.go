// Command experiments regenerates every figure of the paper's
// evaluation section (there are no numbered tables) and the Section
// IV-A validation numbers. Results print to stdout and are also written
// as whitespace-separated .dat files under -out (default ./results).
//
// Usage:
//
//	experiments [flags] {fig1b|fig1c|fig5|fig6|fig7|validate|ablation|rate-engine|potential-engine|obs-overhead|sweep-engine|noise-bench|noise-spectroscopy|all}
//
// See EXPERIMENTS.md for the mapping to the paper and the measured
// outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"semsim/internal/obs"
)

var (
	outDir    = flag.String("out", "results", "directory for .dat output files")
	quick     = flag.Bool("quick", false, "cut event budgets, grid sizes and seeds for a fast smoke run")
	only      = flag.String("only", "", "fig6/fig7: run only the named benchmark")
	maxJuncs  = flag.Int("max-junctions", 0, "fig6/fig7: skip benchmarks larger than this (0 = no limit)")
	seeds     = flag.Int("seeds", 9, "fig7: number of Monte Carlo seeds to average (paper: 9)")
	spiceCap  = flag.Duration("spice-budget", 2*time.Minute, "fig6/fig7: wall-clock budget per SPICE transient before it is reported as failed")
	obsAddr   = flag.String("obs-addr", "", "serve live metrics, trace and pprof on this address (e.g. :6060)")
	traceFile = flag.String("trace", "", "write a Chrome trace_event journal of the run to this file")
	progress  = flag.Bool("progress", false, "print periodic progress lines to stderr")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] {fig1b|fig1c|fig5|fig6|fig7|validate|ablation|rate-engine|potential-engine|obs-overhead|sweep-engine|noise-bench|noise-spectroscopy|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	stopObs, err := obs.StartCLI(obs.CLIConfig{Addr: *obsAddr, TraceFile: *traceFile, Progress: *progress})
	if err != nil {
		fatal(err)
	}
	defer stopObs()
	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("-- %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	switch flag.Arg(0) {
	case "fig1b":
		run("fig1b", fig1b)
	case "fig1c":
		run("fig1c", fig1c)
	case "fig5":
		run("fig5", fig5)
	case "fig6":
		run("fig6", fig6)
	case "fig7":
		run("fig7", fig7)
	case "validate":
		run("validate", validate)
	case "ablation":
		run("ablation", ablation)
	case "rate-engine":
		run("rate-engine", rateEngine)
	case "potential-engine":
		run("potential-engine", potentialEngine)
	case "obs-overhead":
		run("obs-overhead", obsOverhead)
	case "sweep-engine":
		run("sweep-engine", sweepEngine)
	case "noise-bench":
		run("noise-bench", noiseBench)
	case "noise-spectroscopy":
		run("noise-spectroscopy", noiseSpectroscopy)
	case "all":
		run("validate", validate)
		run("fig1b", fig1b)
		run("fig1c", fig1c)
		run("fig5", fig5)
		run("fig6", fig6)
		run("fig7", fig7)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// datFile creates an output file and returns it with a cleanup func.
func datFile(name string) (*os.File, func()) {
	path := filepath.Join(*outDir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
