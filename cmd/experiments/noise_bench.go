package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// noiseBench measures what streaming noise accumulation costs on the
// c432 workload — plain current recording vs counting-window cumulants
// on every junction vs the full spectral estimator, same seed so all
// modes execute the identical trajectory — and writes the baseline to
// BENCH_noise.json.
func noiseBench() error {
	// Longer runs and more repeats than the obs benchmark: the gate
	// resolves a few percent, so the per-mode wall time must be well
	// clear of scheduler noise.
	name, events, repeats := "c432", uint64(150000), 9
	if *quick {
		name, events, repeats = "74LS153", uint64(2000), 2
	}
	b, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("benchmark %s missing from suite", name)
	}
	rep, err := bench.RunNoiseOverhead(b, logicnet.DefaultParams(), events, 11, repeats, 4)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		extra := ""
		if r.Windows > 0 {
			extra = fmt.Sprintf("  %d windows, %d recorded events", r.Windows, r.RecorderEvents)
		}
		fmt.Printf("%-8s  %8.0f events/s  %8.3fs wall  %+5.1f%% overhead%s\n",
			r.Mode, r.EventsPerSec, r.WallSeconds, r.OverheadPct, extra)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_noise.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
