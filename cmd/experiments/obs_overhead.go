package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// obsOverhead measures what the observability layer costs on the c432
// workload — obs off vs metrics-only vs full tracing, same seed so all
// three runs execute the identical trajectory — and writes the baseline
// to BENCH_obs_overhead.json.
func obsOverhead() error {
	name, events, repeats := "c432", uint64(20000), 3
	if *quick {
		name, events, repeats = "74LS153", uint64(2000), 2
	}
	b, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("benchmark %s missing from suite", name)
	}
	rep, err := bench.RunObsOverhead(b, logicnet.DefaultParams(), events, 11, repeats)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		extra := ""
		if r.JournalEvents > 0 {
			extra = fmt.Sprintf("  %d journal records", r.JournalEvents)
		}
		fmt.Printf("%-8s  %8.0f events/s  %8.3fs wall  %+5.1f%% overhead%s\n",
			r.Mode, r.EventsPerSec, r.WallSeconds, r.OverheadPct, extra)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_obs_overhead.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
