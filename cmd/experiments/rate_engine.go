package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// rateEngine benchmarks the within-run parallel rate engine on a large
// circuit and writes the machine-readable results to
// BENCH_rate_engine.json: events/sec, rate calculations and wall time
// for serial vs parallel execution with exact vs tabulated kernels.
func rateEngine() error {
	name, events := "c432", uint64(20000)
	if *quick {
		name, events = "74LS153", uint64(2000)
	}
	b, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("benchmark %s missing from suite", name)
	}
	rep, err := bench.RunRateEngine(b, logicnet.DefaultParams(), events, 11)
	if err != nil {
		return err
	}
	for _, r := range rep.Runs {
		tables := "exact"
		if r.RateTables {
			tables = "tables"
		}
		fmt.Printf("%-8s x%-2d %-6s  %8.0f events/s  %12d rate calcs  %8.3fs wall\n",
			r.Mode, r.Workers, tables, r.EventsPerSec, r.RateCalcs, r.WallSeconds)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_rate_engine.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
