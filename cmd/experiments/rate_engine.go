package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"semsim/internal/bench"
	"semsim/internal/logicnet"
)

// rateEngine benchmarks the within-run parallel rate engine and writes
// the machine-readable results to BENCH_rate_engine.json: events/sec,
// rate calculations and wall time for serial vs parallel execution with
// exact vs tabulated kernels. Two circuits are timed — c432 (2072
// junctions, dense potentials) and c1908 (6988 junctions, sparse
// potentials) — so the report covers both potential engines' hot paths;
// the file holds an array with one report per circuit.
func rateEngine() error {
	type row struct {
		name   string
		events uint64
		sparse bool
	}
	rows := []row{
		{"c432", 20000, false},
		{"c1908", 10000, true},
	}
	if *quick {
		rows = []row{{"74LS153", 2000, false}}
	}
	var reps []*bench.RateEngineReport
	for _, w := range rows {
		b, ok := bench.ByName(w.name)
		if !ok {
			return fmt.Errorf("benchmark %s missing from suite", w.name)
		}
		rep, err := bench.RunRateEngineWith(b, logicnet.DefaultParams(), w.events, 11, w.sparse)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d junctions):\n", rep.Benchmark, rep.Junctions)
		for _, r := range rep.Runs {
			tables := "exact"
			if r.RateTables {
				tables = "tables"
			}
			fmt.Printf("  %-8s x%-2d %-6s  %8.0f events/s  %12d rate calcs  %8.3fs wall\n",
				r.Mode, r.Workers, tables, r.EventsPerSec, r.RateCalcs, r.WallSeconds)
		}
		reps = append(reps, rep)
	}
	data, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, "BENCH_rate_engine.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// The tabulated kernels exist to be faster than exact evaluation;
	// regressing that inverts the benchmark's reason to exist, so the
	// generator fails loudly on a report it had to write regressed.
	var all []bench.RateEngineReport
	for _, r := range reps {
		all = append(all, *r)
	}
	if bad := bench.CheckTablesAtLeastExact(all); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", m)
		}
		return fmt.Errorf("rate-engine: tabulated kernels slower than exact in %d configuration(s)", len(bad))
	}
	return nil
}
