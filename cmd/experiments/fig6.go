package main

import (
	"errors"
	"fmt"
	"time"

	"semsim"
	"semsim/internal/bench"
	"semsim/internal/logicnet"
	"semsim/internal/spicemodel"
)

// fig6 regenerates the performance comparison: for each of the 15 logic
// benchmarks, the wall-clock time to simulate 10 us of circuit time
// with the non-adaptive Monte Carlo solver, the adaptive solver
// (SEMSIM), and the compact-model SPICE baseline. Like the paper, the
// large benchmarks are extrapolated from shortened runs normalized to
// the 10 us window; the machine-independent rate-calculations-per-event
// ratio is reported alongside.
func fig6() error {
	const simWindow = 10e-6 // the paper's normalization target

	var rows []fig6Row

	p := logicnet.DefaultParams()
	for _, b := range bench.Suite() {
		if *only != "" && b.Name != *only {
			continue
		}
		if *maxJuncs > 0 && b.PublishedJunctions > *maxJuncs {
			fmt.Printf("%-18s skipped (> %d junctions)\n", b.Name, *maxJuncs)
			continue
		}
		// Event budget shrinks with size so the measurement window stays
		// tractable; timing is normalized per simulated second anyway.
		events := uint64(40_000_000 / b.PublishedJunctions)
		if events > 30000 {
			events = 30000
		}
		if events < 1500 {
			events = 1500
		}
		if *quick {
			events /= 10
			if events < 500 {
				events = 500
			}
		}

		ex, err := bench.BuildWorkload(b, p)
		if err != nil {
			return err
		}
		na, err := bench.TimeSolverOn(ex, semsim.Options{Temp: bench.WorkloadTemp, Seed: 11}, events, 0)
		if err != nil {
			return fmt.Errorf("%s non-adaptive: %w", b.Name, err)
		}
		ad, err := bench.TimeSolverOn(ex, semsim.Options{Temp: bench.WorkloadTemp, Seed: 11, Adaptive: true}, events, 0)
		if err != nil {
			return fmt.Errorf("%s adaptive: %w", b.Name, err)
		}
		r := fig6Row{
			name:   b.Name,
			juncs:  b.PublishedJunctions,
			naSec:  na.WallPerSimETime * simWindow,
			adSec:  ad.WallPerSimETime * simWindow,
			rateNA: na.RatePerEvent,
			rateAD: ad.RatePerEvent,
		}
		if r.adSec > 0 {
			r.speedup = r.naSec / r.adSec
		}

		// SPICE baseline: a shortened transient window, extrapolated the
		// same way. Failures (non-convergence, wrong logic value, or
		// exceeding the wall budget this dense-matrix baseline gets) are
		// reported like the paper's missing bars.
		spiceSec, spiceErr := spiceTiming(ex, b, simWindow)
		r.spiceSec, r.spiceErr = spiceSec, spiceErr
		rows = append(rows, r)
		fmt.Printf("%-18s %5dj  non-adaptive %9.1fs  adaptive %8.1fs  speedup %5.1fx  spice %s\n",
			r.name, r.juncs, r.naSec, r.adSec, r.speedup, spiceCell(r))
	}

	f, done := datFile("fig6.dat")
	defer done()
	fmt.Fprintln(f, "# Fig. 6: projected wall seconds to simulate 10 us of circuit time")
	fmt.Fprintln(f, "# benchmark junctions t_nonadaptive(s) t_adaptive(s) speedup ratecalcs_per_event_na ratecalcs_per_event_ad t_spice(s_or_-1) spice_status")
	for _, r := range rows {
		status := r.spiceErr
		if status == "" {
			status = "ok"
		}
		sp := r.spiceSec
		if r.spiceErr != "" {
			sp = -1
		}
		fmt.Fprintf(f, "%s %d %.3f %.3f %.2f %.1f %.2f %.3f %s\n",
			r.name, r.juncs, r.naSec, r.adSec, r.speedup, r.rateNA, r.rateAD, sp, status)
	}
	return nil
}

// fig6Row is one benchmark's measurements.
type fig6Row struct {
	name     string
	juncs    int
	naSec    float64
	adSec    float64
	speedup  float64
	rateNA   float64
	rateAD   float64
	spiceSec float64
	spiceErr string
}

func spiceCell(r fig6Row) string {
	if r.spiceErr != "" {
		return "FAIL(" + r.spiceErr + ")"
	}
	return fmt.Sprintf("%.1fs", r.spiceSec)
}

// spiceTiming runs the compact-model transient over a short window and
// projects the wall time to the full simWindow. It also checks the
// settled logic outputs against the boolean netlist ("incorrect
// output" in the paper's terms).
func spiceTiming(ex *logicnet.Expanded, b bench.Benchmark, simWindow float64) (float64, string) {
	sp, err := semsim.NewSpice(ex.Circuit, bench.WorkloadTemp)
	if err != nil {
		return 0, "unsupported"
	}
	sp.WallBudget = *spiceCap
	window := 40e-9
	dt := 0.5e-9
	if *quick {
		window = 10e-9
	}
	start := time.Now()
	if err := sp.Run(window, dt); err != nil {
		switch {
		case errors.Is(err, spicemodel.ErrWallBudget):
			return 0, "budget"
		case errors.Is(err, spicemodel.ErrNoConvergence):
			return 0, "non-convergence"
		default:
			return 0, "error"
		}
	}
	wall := time.Since(start)

	// Logic-correctness check at the settled pre-step state.
	assign := map[string]bool{}
	for _, in := range b.Netlist.Inputs {
		assign[in] = false
	}
	for _, in := range b.HighInputs {
		assign[in] = true
	}
	want, err := b.Netlist.Eval(assign)
	if err != nil {
		return 0, "error"
	}
	thr := ex.LogicThreshold()
	for _, out := range b.Netlist.Outputs {
		got := sp.Voltage(ex.Wire[out]) > thr
		if got != want[out] {
			return 0, "incorrect-output"
		}
	}
	return wall.Seconds() / window * simWindow, ""
}
