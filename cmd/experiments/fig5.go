package main

import (
	"fmt"

	"semsim"
	"semsim/internal/numeric"
	"semsim/internal/units"
)

// fig5 regenerates the Fig. 5 stability map: the current of a
// superconducting SET (R = 210 kOhm, C = 110 aF, Cg = 14 aF,
// Delta = 0.21 meV, Qb = 0.65 e) at T = 0.52 K over the
// (Vbias, Vgate) plane, showing JQP ridges and thermally excited
// singularity-matching features below the quasi-particle threshold.
func fig5() error {
	nx, ny := 45, 26
	events := uint64(20000)
	if *quick {
		nx, ny = 18, 10
		events = 5000
	}
	// The paper's axes: Vbias ~ 0.4..1.6 mV, Vgate 0..10 mV.
	xs := numeric.Linspace(0.4e-3, 1.6e-3, nx)
	ys := numeric.Linspace(0, 0.010, ny)

	build := func(vb, vg float64) (*semsim.Circuit, int, error) {
		c, nd := semsim.NewSET(semsim.SETConfig{
			R1: 210e3, C1: 110e-18, R2: 210e3, C2: 110e-18, Cg: 14e-18,
			Vs: vb, Vd: 0, Vg: vg,
			Qb:    0.65 * units.E,
			Super: semsim.SuperParams{GapAt0: units.MeV(0.23), Tc: 1.4},
		})
		return c, nd.JuncDrain, nil
	}
	grid, err := semsim.Map2D(build, xs, ys, semsim.SweepConfig{
		Options:    semsim.Options{Temp: 0.52, Seed: 500},
		WarmEvents: events / 5,
		Events:     events,
		MaxTime:    2e-3,
	})
	if err != nil {
		return err
	}

	f, done := datFile("fig5.dat")
	defer done()
	fmt.Fprintln(f, "# SSET stability map: rows = Vgate, cols = Vbias, value = |I| (A)")
	fmt.Fprint(f, "# Vbias(V):")
	for _, x := range xs {
		fmt.Fprintf(f, " %.5e", x)
	}
	fmt.Fprintln(f)
	for iy, vg := range ys {
		fmt.Fprintf(f, "%.5e", vg)
		for ix := range xs {
			fmt.Fprintf(f, " %.5e", abs(grid[iy][ix]))
		}
		fmt.Fprintln(f)
	}

	// Console summary: strongest sub-threshold feature per gate row.
	fmt.Println("per-gate-voltage maximum sub-gap current (JQP ridge trace):")
	step := len(ys) / 6
	if step == 0 {
		step = 1
	}
	for iy := 0; iy < len(ys); iy += step {
		bestI, bestV := 0.0, 0.0
		for ix, vb := range xs {
			// Restrict to below the ~1.5 mV quasi-particle onset.
			if vb > 1.45e-3 {
				break
			}
			if a := abs(grid[iy][ix]); a > bestI {
				bestI, bestV = a, vb
			}
		}
		fmt.Printf("  Vg=%6.2f mV: peak %.3e A at Vb=%.2f mV\n", ys[iy]*1e3, bestI, bestV*1e3)
	}
	return nil
}
