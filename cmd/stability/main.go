// Command stability computes a two-dimensional stability diagram from
// a netlist deck: the recorded junction current (or its numerical
// dI/dVx — the classic Coulomb-diamond view) over a grid of two DC
// source voltages. Each worker compiles the circuit once and re-seeds
// its solver per point (bit-identical to rebuilding), and with
// refinement enabled the grid is simulated coarsely and subdivided only
// where the current shows contrast — the diamond edges — so large maps
// cost a fraction of a uniform fine grid.
//
// The axes come from the deck's `map` directives when present (and
// `refine` sets the default refinement depth), or from the -x/-y flags:
//
//	stability input.cir                                  # deck has map/refine lines
//	stability -x 1 -xmax 0.002 -y 2 -ymax 0.01 input.cir # explicit axes
//	stability -refine 3 -threshold 0.1 input.cir         # override refinement
//
// Output: a whitespace matrix (rows = y, cols = x) preceded by header
// comments, suitable for gnuplot's `plot '...' matrix nonuniform`.
// With refinement the matrix covers the full fine lattice; points the
// refiner skipped are dyadically interpolated, and the header reports
// the simulated/total counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"semsim"
	"semsim/internal/numeric"
)

var (
	xNode     = flag.Int("x", -1, "netlist node whose DC source sweeps along x (default: the deck's `map x` line)")
	yNode     = flag.Int("y", -1, "netlist node whose DC source sweeps along y (default: the deck's `map y` line)")
	xMin      = flag.Float64("xmin", 0, "x sweep start (V)")
	xMax      = flag.Float64("xmax", 0, "x sweep end (V)")
	yMin      = flag.Float64("ymin", 0, "y sweep start (V)")
	yMax      = flag.Float64("ymax", 0, "y sweep end (V)")
	nx        = flag.Int("nx", 41, "x grid points (coarse grid when refining)")
	ny        = flag.Int("ny", 31, "y grid points (coarse grid when refining)")
	depth     = flag.Int("refine", -1, "dyadic refinement levels; each halves the cell size (-1: the deck's `refine` line, 0: uniform grid)")
	threshold = flag.Float64("threshold", 0, "refine cells whose corner currents span this fraction of the global range (0 = deck value or 0.1)")
	maxPoints = flag.Int("max-points", 0, "cap on simulated fine points (0 = unlimited)")
	workers   = flag.Int("workers", 0, "concurrent point workers, one compiled solver each (0 = GOMAXPROCS)")
	deriv     = flag.Bool("g", false, "output dI/dVx (Coulomb-diamond conductance) instead of current")
	out       = flag.String("o", "", "output file (default stdout)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: stability [-x N -xmax V -y M -ymax V] [-refine d] [flags] input.cir")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	deck, err := semsim.ParseNetlist(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(deck.Spec.RecordJuncs) == 0 {
		fatal(fmt.Errorf("deck must record at least one junction"))
	}
	rec := deck.Spec.RecordJuncs[0]
	if deck.Spec.Jumps == 0 && deck.Spec.MaxTime == 0 {
		fatal(fmt.Errorf("deck must set 'jumps' and/or 'time'"))
	}

	// Axes: explicit flags win; the deck's `map` directives fill in the
	// rest; the `refine` directive sets the default depth and threshold.
	xn, yn := *xNode, *yNode
	xs := numeric.Linspace(*xMin, *xMax, max(*nx, 2))
	ys := numeric.Linspace(*yMin, *yMax, max(*ny, 2))
	rc := semsim.RefineConfig{Depth: *depth, Threshold: *threshold, MaxPoints: *maxPoints}
	if mp := deck.Spec.Map; mp != nil {
		if xn < 0 {
			xn = mp.X.Node
			xs = mp.X.Values()
		}
		if yn < 0 {
			yn = mp.Y.Node
			ys = mp.Y.Values()
		}
		if rc.Depth < 0 {
			rc.Depth = mp.Depth
		}
		if rc.Threshold <= 0 {
			rc.Threshold = mp.Threshold
		}
	}
	if rc.Depth < 0 {
		rc.Depth = 0
	}
	if xn < 0 || yn < 0 {
		fatal(fmt.Errorf("no axes: give the deck `map x`/`map y` lines or use -x/-xmax/-y/-ymax"))
	}
	if *xNode >= 0 && *xMax <= *xMin || *yNode >= 0 && *yMax <= *yMin {
		fatal(fmt.Errorf("empty axis range"))
	}

	sp := deck.Spec
	cfg := semsim.SweepConfig{
		Options: semsim.Options{
			Temp:         sp.Temp,
			Cotunneling:  sp.Cotunnel,
			Adaptive:     sp.Adaptive,
			Alpha:        sp.Alpha,
			RefreshEvery: sp.RefreshEvery,
			Seed:         sp.Seed,
			RateTables:   sp.RateTables,
		},
		WarmEvents: sp.Jumps / 5,
		Events:     sp.Jumps,
		MaxTime:    sp.MaxTime,
		Parallel:   *workers,
	}
	if sp.Sparse {
		cfg.Options.SparsePotentials = true
		cfg.Options.CinvTruncation = sp.CinvEps
	}

	// One compiled circuit + solver per worker; every point re-seeds it.
	newSession := func() (*semsim.SweepSession, error) {
		cc, err := deck.Compile(nil)
		if err != nil {
			return nil, err
		}
		cx, okx := cc.Node[xn]
		cy, oky := cc.Node[yn]
		if !okx || !oky {
			return nil, fmt.Errorf("axis node missing from circuit (x=%d, y=%d)", xn, yn)
		}
		over := func(x, y float64) map[int]float64 {
			return map[int]float64{cx: x, cy: y}
		}
		return semsim.NewSweepSession(cc.Circuit, cc.Junc[rec], over, cfg)
	}

	m, err := semsim.Map2DRefined(newSession, xs, ys, cfg, rc)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	grid := m.I
	what := "I(A)"
	if *deriv {
		what = "dI/dVx (S)"
		for iy := range grid {
			row := grid[iy]
			d := make([]float64, len(row))
			for ix := range row {
				lo, hi := max(0, ix-1), min(len(row)-1, ix+1)
				d[ix] = (row[hi] - row[lo]) / (m.Xs[hi] - m.Xs[lo])
			}
			grid[iy] = d
		}
	}
	fmt.Fprintf(w, "# stability diagram of %s: %s of junction %d\n", flag.Arg(0), what, rec)
	fmt.Fprintf(w, "# x: node %d, %g..%g V (%d); y: node %d, %g..%g V (%d)\n",
		xn, m.Xs[0], m.Xs[len(m.Xs)-1], len(m.Xs), yn, m.Ys[0], m.Ys[len(m.Ys)-1], len(m.Ys))
	fmt.Fprintf(w, "# refine depth %d: simulated %d of %d lattice points (%.1fx saving)\n",
		rc.Depth, m.PointsSimulated, m.PointsTotal,
		float64(m.PointsTotal)/float64(max(m.PointsSimulated, 1)))
	for iy, vy := range m.Ys {
		fmt.Fprintf(w, "%.6e", vy)
		for ix := range m.Xs {
			fmt.Fprintf(w, " %.5e", grid[iy][ix])
		}
		fmt.Fprintln(w)
		_ = iy
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stability:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
