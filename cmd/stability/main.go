// Command stability computes a two-dimensional stability diagram from
// a netlist deck: it sweeps the DC sources on two nodes over a grid and
// writes the recorded junction current (or its numerical dI/dV — the
// classic Coulomb-diamond view) at every point. Grid points run in
// parallel with deterministic seeds.
//
// Usage:
//
//	stability -x 1 -xmax 0.002 -y 2 -ymax 0.01 [-nx 41 -ny 31] [-g] input.cir
//
// Output: a whitespace matrix (rows = y, cols = x) preceded by header
// comments, suitable for gnuplot's `plot '...' matrix nonuniform`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"semsim"
	"semsim/internal/numeric"
)

var (
	xNode = flag.Int("x", -1, "netlist node whose DC source sweeps along x (required)")
	yNode = flag.Int("y", -1, "netlist node whose DC source sweeps along y (required)")
	xMin  = flag.Float64("xmin", 0, "x sweep start (V)")
	xMax  = flag.Float64("xmax", 0, "x sweep end (V, required)")
	yMin  = flag.Float64("ymin", 0, "y sweep start (V)")
	yMax  = flag.Float64("ymax", 0, "y sweep end (V, required)")
	nx    = flag.Int("nx", 41, "x grid points")
	ny    = flag.Int("ny", 31, "y grid points")
	deriv = flag.Bool("g", false, "output dI/dVx (Coulomb-diamond conductance) instead of current")
	out   = flag.String("o", "", "output file (default stdout)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: stability -x N -xmax V -y M -ymax V [flags] input.cir")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || *xNode < 0 || *yNode < 0 || *xMax <= *xMin || *yMax <= *yMin {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	deck, err := semsim.ParseNetlist(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(deck.Spec.RecordJuncs) == 0 {
		fatal(fmt.Errorf("deck must record at least one junction"))
	}
	rec := deck.Spec.RecordJuncs[0]
	if deck.Spec.Jumps == 0 && deck.Spec.MaxTime == 0 {
		fatal(fmt.Errorf("deck must set 'jumps' and/or 'time'"))
	}

	xs := numeric.Linspace(*xMin, *xMax, *nx)
	ys := numeric.Linspace(*yMin, *yMax, *ny)
	grid := make([][]float64, len(ys))
	for i := range grid {
		grid[i] = make([]float64, len(xs))
	}

	type job struct{ ix, iy int }
	jobs := make(chan job)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				i, err := point(deck, xs[j.ix], ys[j.iy], rec, uint64(j.iy*len(xs)+j.ix))
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					continue
				}
				grid[j.iy][j.ix] = i
			}
		}()
	}
	for iy := range ys {
		for ix := range xs {
			jobs <- job{ix, iy}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		fatal(err)
	default:
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	what := "I(A)"
	if *deriv {
		what = "dI/dVx (S)"
		for iy := range grid {
			row := grid[iy]
			d := make([]float64, len(row))
			for ix := range row {
				lo, hi := max(0, ix-1), min(len(row)-1, ix+1)
				d[ix] = (row[hi] - row[lo]) / (xs[hi] - xs[lo])
			}
			grid[iy] = d
		}
	}
	fmt.Fprintf(w, "# stability diagram of %s: %s of junction %d\n", flag.Arg(0), what, rec)
	fmt.Fprintf(w, "# x: node %d, %g..%g V (%d); y: node %d, %g..%g V (%d)\n",
		*xNode, *xMin, *xMax, *nx, *yNode, *yMin, *yMax, *ny)
	for iy, vy := range ys {
		fmt.Fprintf(w, "%.6e", vy)
		for ix := range xs {
			fmt.Fprintf(w, " %.5e", grid[iy][ix])
		}
		fmt.Fprintln(w)
		_ = iy
	}
}

// point runs one grid point and returns the recorded current.
func point(deck *semsim.Deck, vx, vy float64, rec int, seed uint64) (float64, error) {
	cc, err := deck.Compile(map[int]float64{*xNode: vx, *yNode: vy})
	if err != nil {
		return 0, err
	}
	sp := deck.Spec
	s, err := semsim.NewSim(cc.Circuit, semsim.Options{
		Temp:        sp.Temp,
		Cotunneling: sp.Cotunnel,
		Adaptive:    sp.Adaptive,
		Alpha:       sp.Alpha,
		Seed:        sp.Seed + seed*7919,
	})
	if err != nil {
		return 0, err
	}
	if _, err := s.Run(sp.Jumps/5, sp.MaxTime/5); err != nil {
		if err == semsim.ErrBlockaded {
			return 0, nil
		}
		return 0, err
	}
	s.ResetMeasurement()
	if _, err := s.Run(sp.Jumps, sp.MaxTime); err != nil {
		if err == semsim.ErrBlockaded {
			return 0, nil
		}
		return 0, err
	}
	return s.JunctionCurrent(cc.Junc[rec]), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stability:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
